// Wire format for the TCP record plane. One frame per request and per
// response, symmetric in both directions:
//
//	bytes 0..3   magic "MPW1"
//	byte  4      op
//	byte  5      flags (reserved, must be 0)
//	bytes 6..7   reserved (must be 0)
//	bytes 8..15  seq     (uint64 LE) — idempotency sequence number
//	bytes 16..19 machine (int32 LE)  — logical machine index, -1 if n/a
//	bytes 20..23 payload length (uint32 LE)
//	...          payload
//	last 4       CRC32-IEEE over header+payload (LE)
//
// The checksum makes payload corruption a detected transport failure
// instead of a silently wrong tree: a frame that fails its CRC poisons
// the connection (framing can no longer be trusted), and the coordinator
// reconnects and retries under the op's original seq.
//
// Sequencing: the coordinator stamps every state-touching op with a
// strictly increasing seq and REUSES that seq across retries of the same
// op. The worker remembers the last seq it applied and the response it
// sent; a duplicate (same seq) returns the cached response without
// re-applying, which is what makes "send it again" a safe recovery move
// for non-idempotent ops like Append. seq 0 is reserved for unsequenced
// ops (Hello, Ping) that are never deduped.
package mpcnet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Op identifies a frame's operation (requests) or disposition (responses).
type Op byte

// Request ops (coordinator → worker) and response ops (worker →
// coordinator). Response payloads: RespData carries op-specific bytes
// (encoded records for OpRead, a uvarint for OpWords); RespErr carries a
// human-readable reason.
const (
	OpHello  Op = 1 // handshake; unsequenced
	OpRead   Op = 3 // fetch machine store → RespData(records)
	OpWrite  Op = 4 // replace machine store; payload records
	OpAppend Op = 5 // append to machine store; payload records
	OpWords  Op = 6 // resident word count → RespData(uvarint)
	OpReset  Op = 7 // clear all stores on this worker
	OpPing   Op = 8 // liveness probe; unsequenced

	RespOK   Op = 64
	RespData Op = 65
	RespErr  Op = 66
)

func (o Op) String() string {
	switch o {
	case OpHello:
		return "hello"
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpAppend:
		return "append"
	case OpWords:
		return "words"
	case OpReset:
		return "reset"
	case OpPing:
		return "ping"
	case RespOK:
		return "ok"
	case RespData:
		return "data"
	case RespErr:
		return "err"
	}
	return fmt.Sprintf("op(%d)", byte(o))
}

const (
	wireMagic  = "MPW1"
	headerLen  = 24
	trailerLen = 4 // CRC32
	// maxPayload bounds a single frame. Stores are capped by the model's
	// CapWords (words are 8 bytes), so legitimate frames are far smaller;
	// the bound exists to stop a corrupted length field from driving a
	// giant allocation before the CRC gets a chance to fail.
	maxPayload = 1 << 28
)

// ErrWire is the class of framing-level failures: bad magic, length out
// of range, checksum mismatch, short reads. A connection that produced
// one can no longer be trusted to be frame-aligned and must be redialed.
var ErrWire = errors.New("mpcnet: wire protocol violation")

// Frame is one decoded message.
type Frame struct {
	Op      Op
	Seq     uint64
	Machine int32
	Payload []byte
}

// AppendFrame appends the encoded frame (header, payload, CRC) to dst.
func AppendFrame(dst []byte, f Frame) []byte {
	start := len(dst)
	dst = append(dst, wireMagic...)
	dst = append(dst, byte(f.Op), 0, 0, 0)
	dst = binary.LittleEndian.AppendUint64(dst, f.Seq)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(f.Machine))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(f.Payload)))
	dst = append(dst, f.Payload...)
	sum := crc32.ChecksumIEEE(dst[start:])
	return binary.LittleEndian.AppendUint32(dst, sum)
}

// WriteFrame encodes and writes one frame.
func WriteFrame(w io.Writer, f Frame) error {
	buf := AppendFrame(make([]byte, 0, headerLen+len(f.Payload)+trailerLen), f)
	_, err := w.Write(buf)
	return err
}

// ReadFrame reads and validates one frame. Any violation — wrong magic,
// oversized length, failed checksum — returns an ErrWire-class error;
// io.EOF passes through untouched so callers can distinguish a clean
// close from a torn one.
func ReadFrame(r io.Reader) (Frame, error) {
	var hdr [headerLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return Frame{}, io.EOF
		}
		return Frame{}, fmt.Errorf("%w: short header: %v", ErrWire, err)
	}
	if string(hdr[:4]) != wireMagic {
		return Frame{}, fmt.Errorf("%w: bad magic %q", ErrWire, hdr[:4])
	}
	if hdr[5] != 0 || hdr[6] != 0 || hdr[7] != 0 {
		return Frame{}, fmt.Errorf("%w: nonzero reserved bytes", ErrWire)
	}
	plen := binary.LittleEndian.Uint32(hdr[20:24])
	if plen > maxPayload {
		return Frame{}, fmt.Errorf("%w: payload length %d exceeds limit %d", ErrWire, plen, maxPayload)
	}
	f := Frame{
		Op:      Op(hdr[4]),
		Seq:     binary.LittleEndian.Uint64(hdr[8:16]),
		Machine: int32(binary.LittleEndian.Uint32(hdr[16:20])),
	}
	rest := make([]byte, int(plen)+trailerLen)
	if _, err := io.ReadFull(r, rest); err != nil {
		return Frame{}, fmt.Errorf("%w: short payload: %v", ErrWire, err)
	}
	want := binary.LittleEndian.Uint32(rest[plen:])
	sum := crc32.ChecksumIEEE(hdr[:])
	sum = crc32.Update(sum, crc32.IEEETable, rest[:plen])
	if sum != want {
		return Frame{}, fmt.Errorf("%w: checksum mismatch on %s frame seq %d (got %08x want %08x)",
			ErrWire, f.Op, f.Seq, sum, want)
	}
	if plen > 0 {
		f.Payload = rest[:plen:plen]
	}
	return f, nil
}
