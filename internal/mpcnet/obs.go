// Observability sinks for the TCP record plane. Both halves of the
// transport export to an obs.Registry through a sink struct that caches
// the per-op-kind series cells, so the per-op cost of instrumentation is
// one map lookup under a private lock — negligible next to a TCP round
// trip, and exactly zero when no registry was attached.
//
// Coordinator series (mpcnet_*) measure the wire as the coordinator sees
// it: per-attempt latency including dial and retry backoff effects.
// Worker series (mpcworker_*) measure pure service time around apply(),
// plus the dedup/session machinery that makes retries safe. The gap
// between the two IS the network (plus queueing) — which is the point of
// exporting both.
//
// Everything here is observational; sinks are write-only and nothing in
// the transport reads a metric back. The bitwise-identity suites run with
// and without instrumentation attached.
package mpcnet

import (
	"sync"

	"mpctree/internal/obs"
)

// opLatencyBuckets returns the shared latency bucket layout (seconds,
// geometric ×5 from 100µs): the same shape the serve layer uses, so
// coordinator, worker, and query-path latency histograms line up on
// dashboards.
func opLatencyBuckets() []float64 {
	return []float64{1e-4, 5e-4, 2.5e-3, 1.25e-2, 6.25e-2, 0.3125, 1.5625, 7.8125, 25}
}

// transportSink holds the coordinator-side series cells.
type transportSink struct {
	reg *obs.Registry

	mu        sync.Mutex
	opSeconds map[Op]*obs.Histogram
	opsTotal  map[Op]*obs.Counter
	opErrors  map[Op]*obs.Counter

	retries   *obs.Counter
	redials   *obs.Counter
	dead      *obs.Counter
	remapped  *obs.Counter
	bytesSent *obs.Counter
	bytesRecv *obs.Counter
}

func newTransportSink(reg *obs.Registry) *transportSink {
	return &transportSink{
		reg:       reg,
		opSeconds: make(map[Op]*obs.Histogram),
		opsTotal:  make(map[Op]*obs.Counter),
		opErrors:  make(map[Op]*obs.Counter),
		retries:   reg.Counter("mpcnet_retries_total", "Op attempts beyond the first."),
		redials:   reg.Counter("mpcnet_redials_total", "Worker reconnections established."),
		dead:      reg.Counter("mpcnet_dead_workers_total", "Workers declared dead after retry exhaustion."),
		remapped:  reg.Counter("mpcnet_remapped_machines_total", "Logical machines remapped onto surviving workers."),
		bytesSent: reg.Counter("mpcnet_bytes_sent_total", "Frame bytes written to workers."),
		bytesRecv: reg.Counter("mpcnet_bytes_received_total", "Frame bytes read from workers."),
	}
}

// observeAttempt records one op attempt: its wire latency always, and its
// outcome on the matching ops/errors counter.
func (s *transportSink) observeAttempt(op Op, seconds float64, failed bool) {
	if s == nil {
		return
	}
	s.mu.Lock()
	h, ok := s.opSeconds[op]
	if !ok {
		h = s.reg.Histogram("mpcnet_op_seconds",
			"Coordinator-observed wire latency per op attempt (dial + request + response).",
			opLatencyBuckets(), "op", op.String())
		s.opSeconds[op] = h
	}
	var c *obs.Counter
	if failed {
		c, ok = s.opErrors[op]
		if !ok {
			c = s.reg.Counter("mpcnet_op_errors_total", "Failed op attempts by op kind.", "op", op.String())
			s.opErrors[op] = c
		}
	} else {
		c, ok = s.opsTotal[op]
		if !ok {
			c = s.reg.Counter("mpcnet_ops_total", "Completed sequenced ops by op kind.", "op", op.String())
			s.opsTotal[op] = c
		}
	}
	s.mu.Unlock()
	h.Observe(seconds)
	c.Inc()
}

func (s *transportSink) addBytes(sent, received int64) {
	if s == nil {
		return
	}
	if sent > 0 {
		s.bytesSent.Add(sent)
	}
	if received > 0 {
		s.bytesRecv.Add(received)
	}
}

// workerSink holds the worker-side series cells.
type workerSink struct {
	reg *obs.Registry

	mu        sync.Mutex
	opSeconds map[Op]*obs.Histogram
	opsTotal  map[Op]*obs.Counter

	dedupHits    *obs.Counter
	staleRefused *obs.Counter
	epochs       *obs.Counter
	reqBytes     *obs.Counter
	respBytes    *obs.Counter
	resident     *obs.Gauge
	peak         *obs.Gauge
}

func newWorkerSink(reg *obs.Registry) *workerSink {
	return &workerSink{
		reg:          reg,
		opSeconds:    make(map[Op]*obs.Histogram),
		opsTotal:     make(map[Op]*obs.Counter),
		dedupHits:    reg.Counter("mpcworker_dedup_hits_total", "Retried frames answered from the cached response without re-applying."),
		staleRefused: reg.Counter("mpcworker_stale_refused_total", "Frames refused as stale replays (seq below the high-water mark)."),
		epochs:       reg.Counter("mpcworker_session_epochs_total", "Session epochs begun (OpReset applications)."),
		reqBytes:     reg.Counter("mpcworker_request_bytes_total", "Request frame bytes received."),
		respBytes:    reg.Counter("mpcworker_response_bytes_total", "Response frame bytes sent."),
		resident:     reg.Gauge("mpcworker_resident_words", "Words currently resident across this worker's machine stores."),
		peak:         reg.Gauge("mpcworker_peak_resident_words", "Peak resident words over the worker's lifetime — the paper's per-machine space bound, observed."),
	}
}

// observeOp records one applied sequenced op's service time (around
// apply() only — queueing and framing excluded).
func (s *workerSink) observeOp(op Op, seconds float64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	h, ok := s.opSeconds[op]
	if !ok {
		h = s.reg.Histogram("mpcworker_op_seconds",
			"Worker-side service time per applied op (store mutation only, framing excluded).",
			opLatencyBuckets(), "op", op.String())
		s.opSeconds[op] = h
	}
	c, ok := s.opsTotal[op]
	if !ok {
		c = s.reg.Counter("mpcworker_ops_total", "Sequenced ops applied by op kind.", "op", op.String())
		s.opsTotal[op] = c
	}
	s.mu.Unlock()
	h.Observe(seconds)
	c.Inc()
}

// setResident publishes the worker's current word footprint and raises
// the peak watermark.
func (s *workerSink) setResident(words int) {
	if s == nil {
		return
	}
	s.resident.Set(float64(words))
	s.peak.SetMax(float64(words))
}
