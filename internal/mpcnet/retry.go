// Retry policy for coordinator→worker ops: exponential backoff with
// deterministic jitter. Jitter is drawn from rng.NewHashed(seed, opSeq,
// attempt) rather than wall-clock randomness, so a run's retry schedule
// is a pure function of its seed — reproducible in tests and logs alike.
package mpcnet

import (
	"time"

	"mpctree/internal/rng"
)

// RetryPolicy governs how many times a single op is attempted on one
// worker and how long the coordinator waits between attempts. The zero
// value is usable and picks the defaults noted per field.
type RetryPolicy struct {
	// MaxAttempts is the total tries per op, dial included (default 4).
	// Once exhausted the worker is declared dead and its logical machines
	// are remapped onto survivors.
	MaxAttempts int
	// BaseDelay is the backoff before the first retry (default 25ms).
	// Attempt k waits BaseDelay·2^k, jittered.
	BaseDelay time.Duration
	// MaxDelay caps a single backoff (default 1s).
	MaxDelay time.Duration
	// Seed feeds the jitter hash. Two coordinators with equal seeds
	// produce equal schedules.
	Seed uint64

	// Sleep is the wait hook, for tests that want a fake clock; nil means
	// time.Sleep.
	Sleep func(time.Duration)
}

func (p RetryPolicy) maxAttempts() int {
	if p.MaxAttempts <= 0 {
		return 4
	}
	return p.MaxAttempts
}

func (p RetryPolicy) baseDelay() time.Duration {
	if p.BaseDelay <= 0 {
		return 25 * time.Millisecond
	}
	return p.BaseDelay
}

func (p RetryPolicy) maxDelay() time.Duration {
	if p.MaxDelay <= 0 {
		return time.Second
	}
	return p.MaxDelay
}

// Backoff returns the wait before retrying op seq after failed attempt
// number attempt (0-based): BaseDelay·2^attempt capped at MaxDelay, then
// scaled by a deterministic jitter factor in [0.5, 1.0]. The factor comes
// from hashing (Seed, seq, attempt), so concurrent coordinators with
// different seeds decorrelate while a single run stays reproducible.
func (p RetryPolicy) Backoff(seq uint64, attempt int) time.Duration {
	d := p.baseDelay()
	for i := 0; i < attempt; i++ {
		d *= 2
		if d >= p.maxDelay() {
			d = p.maxDelay()
			break
		}
	}
	if d > p.maxDelay() {
		d = p.maxDelay()
	}
	u := rng.NewHashed(p.Seed, seq, uint64(attempt)).Float64()
	return time.Duration(float64(d) * (0.5 + 0.5*u))
}

func (p RetryPolicy) sleep(d time.Duration) {
	if p.Sleep != nil {
		p.Sleep(d)
		return
	}
	time.Sleep(d)
}
