// Coordinator side of the TCP record plane: an mpc.Transport that keeps
// every logical machine's store on a remote worker process and moves
// serialized record payloads over TCP.
//
// Failure handling, in order of escalation:
//
//  1. Per-op deadlines. Every send/receive runs under OpTimeout; a slow
//     worker is indistinguishable from a dead one and is treated the same.
//  2. Retries with backoff. A failed op closes the connection, waits the
//     RetryPolicy's jittered exponential backoff, redials, and resends the
//     frame UNDER ITS ORIGINAL SEQ — the worker's dedup layer makes the
//     resend safe even if the first copy was applied and only the
//     response was lost.
//  3. Degradation. When the retry budget exhausts, the worker is declared
//     dead: its logical machines are remapped round-robin onto the
//     surviving workers and the op fails with an mpc.ErrTransport error.
//     The cluster latches the failure; the resilient driver restores the
//     last checkpoint, which rewrites every store through this transport
//     — through the NEW assignment — healing the remapped machines. The
//     replayed stage then produces output bit-identical to a fault-free
//     run, because all computation (and all randomness) lives on the
//     coordinator.
//
// When the last worker dies there is nothing left to degrade onto and
// every op — including the restore — keeps failing; the failure stays
// latched and surfaces to the driver as unrecoverable.
package mpcnet

import (
	"encoding/binary"
	"fmt"
	"net"
	"sync"
	"time"

	"mpctree/internal/mpc"
)

// Config shapes a coordinator transport.
type Config struct {
	// Addrs are the worker endpoints. Must be non-empty.
	Addrs []string
	// Machines is the logical machine count; machines are assigned to
	// workers round-robin (machine m starts on worker m % len(Addrs)).
	Machines int
	// DialTimeout bounds one connection attempt (default 2s).
	DialTimeout time.Duration
	// OpTimeout bounds one op attempt end to end: write request + read
	// response (default 10s).
	OpTimeout time.Duration
	// Retry is the per-op retry/backoff policy.
	Retry RetryPolicy
}

func (c Config) dialTimeout() time.Duration {
	if c.DialTimeout <= 0 {
		return 2 * time.Second
	}
	return c.DialTimeout
}

func (c Config) opTimeout() time.Duration {
	if c.OpTimeout <= 0 {
		return 10 * time.Second
	}
	return c.OpTimeout
}

// Stats counts the transport's work and its recoveries. Monotone over the
// transport's lifetime; read via Transport.Stats.
type Stats struct {
	Ops           int   // sequenced ops completed
	Retries       int   // op attempts beyond the first
	Redials       int   // reconnections established
	DeadWorkers   int   // workers declared dead
	Remapped      int   // logical machines remapped onto survivors
	BytesSent     int64 // frame bytes written
	BytesReceived int64 // frame payload bytes read
}

// Transport implements mpc.Transport over TCP workers. Not safe for
// concurrent use — the owning Cluster serializes all calls, matching the
// interface contract.
type Transport struct {
	cfg    Config
	conns  []net.Conn // per worker; nil when not connected
	dead   []bool     // per worker
	assign []int      // logical machine → worker index
	seq    uint64     // last sequenced-op seq issued
	stats  Stats

	mu sync.Mutex // guards Stats reads against the owner's op stream
}

var _ mpc.Transport = (*Transport)(nil)

// Dial connects to the configured workers and verifies each with a
// handshake. Workers that fail the initial handshake fail Dial outright —
// starting degraded is a configuration error, not a runtime fault.
func Dial(cfg Config) (*Transport, error) {
	if len(cfg.Addrs) == 0 {
		return nil, fmt.Errorf("%w: no worker addresses", mpc.ErrTransport)
	}
	if cfg.Machines <= 0 {
		return nil, fmt.Errorf("%w: machine count %d", mpc.ErrTransport, cfg.Machines)
	}
	t := &Transport{
		cfg:    cfg,
		conns:  make([]net.Conn, len(cfg.Addrs)),
		dead:   make([]bool, len(cfg.Addrs)),
		assign: make([]int, cfg.Machines),
	}
	for m := 0; m < cfg.Machines; m++ {
		t.assign[m] = m % len(cfg.Addrs)
	}
	for w := range cfg.Addrs {
		conn, err := t.dial(w)
		if err != nil {
			t.Close()
			return nil, fmt.Errorf("%w: worker %d (%s) handshake: %v", mpc.ErrTransport, w, cfg.Addrs[w], err)
		}
		t.conns[w] = conn
		if err := t.exchange(w, Frame{Op: OpHello}); err != nil {
			t.Close()
			return nil, fmt.Errorf("%w: worker %d (%s) handshake: %v", mpc.ErrTransport, w, cfg.Addrs[w], err)
		}
	}
	return t, nil
}

func (t *Transport) Name() string  { return "tcp" }
func (t *Transport) Machines() int { return len(t.assign) }

// Stats returns a snapshot of the transport's counters.
func (t *Transport) Stats() Stats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.stats
}

// LiveWorkers reports how many workers are still accepting ops.
func (t *Transport) LiveWorkers() int {
	n := 0
	for _, d := range t.dead {
		if !d {
			n++
		}
	}
	return n
}

func (t *Transport) dial(w int) (net.Conn, error) {
	conn, err := net.DialTimeout("tcp", t.cfg.Addrs[w], t.cfg.dialTimeout())
	if err != nil {
		return nil, err
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		_ = tc.SetNoDelay(true)
	}
	return conn, nil
}

// exchange performs one framed request/response on worker w's live
// connection under the op deadline. It does NOT retry; op does.
func (t *Transport) exchange(w int, req Frame) error {
	_, err := t.exchangeResp(w, req)
	return err
}

func (t *Transport) exchangeResp(w int, req Frame) (Frame, error) {
	conn := t.conns[w]
	if conn == nil {
		return Frame{}, fmt.Errorf("no connection")
	}
	deadline := time.Now().Add(t.cfg.opTimeout())
	if err := conn.SetDeadline(deadline); err != nil {
		return Frame{}, err
	}
	buf := AppendFrame(make([]byte, 0, headerLen+len(req.Payload)+trailerLen), req)
	if _, err := conn.Write(buf); err != nil {
		return Frame{}, err
	}
	t.mu.Lock()
	t.stats.BytesSent += int64(len(buf))
	t.mu.Unlock()
	resp, err := ReadFrame(conn)
	if err != nil {
		return Frame{}, err
	}
	t.mu.Lock()
	t.stats.BytesReceived += int64(headerLen + len(resp.Payload) + trailerLen)
	t.mu.Unlock()
	if resp.Seq != req.Seq {
		return Frame{}, fmt.Errorf("%w: response seq %d for request seq %d", ErrWire, resp.Seq, req.Seq)
	}
	return resp, nil
}

// op runs one sequenced op against the worker hosting machine m, with
// the full retry/redial/degrade ladder. On success returns the response
// frame; on exhaustion the hosting worker is marked dead, m (and its
// co-hosted machines) are remapped, and the returned error wraps
// mpc.ErrTransport.
func (t *Transport) op(opCode Op, m int, payload []byte) (Frame, error) {
	w := t.assign[m]
	if t.dead[w] {
		// Should not happen — remap keeps assignments live — but a fully
		// dead cluster can leave stale assignments behind.
		return Frame{}, fmt.Errorf("%w: machine %d assigned to dead worker %d", mpc.ErrTransport, m, w)
	}
	return t.opWorker(w, opCode, int32(m), payload)
}

// opWorker runs one sequenced op against a specific worker.
func (t *Transport) opWorker(w int, opCode Op, machine int32, payload []byte) (Frame, error) {
	t.seq++
	req := Frame{Op: opCode, Seq: t.seq, Machine: machine, Payload: payload}

	var lastErr error
	attempts := t.cfg.Retry.maxAttempts()
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			t.mu.Lock()
			t.stats.Retries++
			t.mu.Unlock()
			t.cfg.Retry.sleep(t.cfg.Retry.Backoff(req.Seq, attempt-1))
		}
		if t.conns[w] == nil {
			conn, err := t.dial(w)
			if err != nil {
				lastErr = err
				continue
			}
			t.conns[w] = conn
			t.mu.Lock()
			t.stats.Redials++
			t.mu.Unlock()
		}
		resp, err := t.exchangeResp(w, req)
		if err != nil {
			t.conns[w].Close()
			t.conns[w] = nil
			lastErr = err
			continue
		}
		if resp.Op == RespErr {
			// The worker is alive but refused the op. Retrying the same
			// bytes cannot succeed; fail without killing the worker.
			return Frame{}, fmt.Errorf("%w: worker %d rejected %s seq %d: %s",
				mpc.ErrTransport, w, opCode, req.Seq, resp.Payload)
		}
		t.mu.Lock()
		t.stats.Ops++
		t.mu.Unlock()
		return resp, nil
	}

	t.markDead(w)
	return Frame{}, fmt.Errorf("%w: worker %d (%s) unreachable after %d attempts (%s machine %d): %v",
		mpc.ErrTransport, w, t.cfg.Addrs[w], attempts, opCode, machine, lastErr)
}

// Reset clears every live worker's stores and sequence state, beginning a
// new session epoch. This is what lets one worker fleet serve a sequence
// of independent clusters (an mpcbench run dials a fresh transport per
// experiment cluster against the same processes).
func (t *Transport) Reset() error {
	for w := range t.cfg.Addrs {
		if t.dead[w] {
			continue
		}
		if _, err := t.opWorker(w, OpReset, -1, nil); err != nil {
			return err
		}
	}
	return nil
}

// markDead declares worker w dead and remaps its logical machines onto
// the survivors round-robin. The remapped machines hold stale (empty)
// stores until the next Restore rewrites them — which is exactly what the
// resilient driver does upon seeing the transport error.
func (t *Transport) markDead(w int) {
	if t.dead[w] {
		return
	}
	t.dead[w] = true
	if t.conns[w] != nil {
		t.conns[w].Close()
		t.conns[w] = nil
	}
	var survivors []int
	for i, d := range t.dead {
		if !d {
			survivors = append(survivors, i)
		}
	}
	t.mu.Lock()
	t.stats.DeadWorkers++
	t.mu.Unlock()
	if len(survivors) == 0 {
		return
	}
	next := 0
	remapped := 0
	for m, hw := range t.assign {
		if hw != w {
			continue
		}
		t.assign[m] = survivors[next%len(survivors)]
		next++
		remapped++
	}
	t.mu.Lock()
	t.stats.Remapped += remapped
	t.mu.Unlock()
}

// Read fetches machine m's store. Remote reads decode into fresh slices,
// so callers own the result outright.
func (t *Transport) Read(m int) ([]mpc.Record, error) {
	resp, err := t.op(OpRead, m, nil)
	if err != nil {
		return nil, err
	}
	recs, err := mpc.DecodeRecords(resp.Payload)
	if err != nil {
		// CRC passed but the payload is not a record slice: a worker-side
		// bug or memory corruption. Not retryable.
		return nil, fmt.Errorf("%w: read machine %d: %v", mpc.ErrTransport, m, err)
	}
	return recs, nil
}

// Write replaces machine m's store.
func (t *Transport) Write(m int, recs []mpc.Record) error {
	_, err := t.op(OpWrite, m, mpc.EncodeRecords(recs))
	return err
}

// Append appends recs to machine m's store, preserving order.
func (t *Transport) Append(m int, recs []mpc.Record) error {
	if len(recs) == 0 {
		return nil
	}
	_, err := t.op(OpAppend, m, mpc.EncodeRecords(recs))
	return err
}

// Words returns machine m's resident word footprint, computed worker-side
// so the residency check costs a dozen bytes, not the whole store.
func (t *Transport) Words(m int) (int, error) {
	resp, err := t.op(OpWords, m, nil)
	if err != nil {
		return 0, err
	}
	v, n := binary.Uvarint(resp.Payload)
	if n <= 0 {
		return 0, fmt.Errorf("%w: words machine %d: bad payload", mpc.ErrTransport, m)
	}
	return int(v), nil
}

// Grow adds logical machines with empty stores, assigned round-robin over
// the live workers.
func (t *Transport) Grow(extra int) error {
	var survivors []int
	for i, d := range t.dead {
		if !d {
			survivors = append(survivors, i)
		}
	}
	if len(survivors) == 0 {
		return fmt.Errorf("%w: grow with no surviving workers", mpc.ErrTransport)
	}
	base := len(t.assign)
	for i := 0; i < extra; i++ {
		t.assign = append(t.assign, survivors[(base+i)%len(survivors)])
	}
	return nil
}

// Close closes all worker connections. Worker processes are owned by the
// spawner, not the transport, and keep running.
func (t *Transport) Close() error {
	for i, conn := range t.conns {
		if conn != nil {
			conn.Close()
			t.conns[i] = nil
		}
	}
	return nil
}
