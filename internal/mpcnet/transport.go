// Coordinator side of the TCP record plane: an mpc.Transport that keeps
// every logical machine's store on a remote worker process and moves
// serialized record payloads over TCP.
//
// Failure handling, in order of escalation:
//
//  1. Per-op deadlines. Every send/receive runs under OpTimeout; a slow
//     worker is indistinguishable from a dead one and is treated the same.
//  2. Retries with backoff. A failed op closes the connection, waits the
//     RetryPolicy's jittered exponential backoff, redials, and resends the
//     frame UNDER ITS ORIGINAL SEQ — the worker's dedup layer makes the
//     resend safe even if the first copy was applied and only the
//     response was lost.
//  3. Degradation. When the retry budget exhausts, the worker is declared
//     dead: its logical machines are remapped round-robin onto the
//     surviving workers and the op fails with an mpc.ErrTransport error.
//     The cluster latches the failure; the resilient driver restores the
//     last checkpoint, which rewrites every store through this transport
//     — through the NEW assignment — healing the remapped machines. The
//     replayed stage then produces output bit-identical to a fault-free
//     run, because all computation (and all randomness) lives on the
//     coordinator.
//
// When the last worker dies there is nothing left to degrade onto and
// every op — including the restore — keeps failing; the failure stays
// latched and surfaces to the driver as unrecoverable.
package mpcnet

import (
	"encoding/binary"
	"fmt"
	"net"
	"sync"
	"time"

	"mpctree/internal/mpc"
	"mpctree/internal/obs"
)

// Config shapes a coordinator transport.
type Config struct {
	// Addrs are the worker endpoints. Must be non-empty.
	Addrs []string
	// Machines is the logical machine count; machines are assigned to
	// workers round-robin (machine m starts on worker m % len(Addrs)).
	Machines int
	// DialTimeout bounds one connection attempt (default 2s).
	DialTimeout time.Duration
	// OpTimeout bounds one op attempt end to end: write request + read
	// response (default 10s).
	OpTimeout time.Duration
	// Retry is the per-op retry/backoff policy.
	Retry RetryPolicy
}

func (c Config) dialTimeout() time.Duration {
	if c.DialTimeout <= 0 {
		return 2 * time.Second
	}
	return c.DialTimeout
}

func (c Config) opTimeout() time.Duration {
	if c.OpTimeout <= 0 {
		return 10 * time.Second
	}
	return c.OpTimeout
}

// Stats counts the transport's work and its recoveries. Monotone over the
// transport's lifetime; read via Transport.Stats.
type Stats struct {
	Ops           int   // sequenced ops completed
	Retries       int   // op attempts beyond the first
	Redials       int   // reconnections established
	DeadWorkers   int   // workers declared dead
	Remapped      int   // logical machines remapped onto survivors
	BytesSent     int64 // frame bytes written
	BytesReceived int64 // frame payload bytes read

	// PerOp breaks the work down by op kind ("read", "append", …), so
	// tail behaviour is visible per kind: a Words probe and a bulk Append
	// have no business sharing a latency figure.
	PerOp map[string]OpStats
}

// OpStats is one op kind's slice of the transport's work.
type OpStats struct {
	Ops     int   // successful attempts (completed ops)
	Errors  int   // failed attempts (timeouts, refusals, torn connections)
	TotalNs int64 // wall time summed over successful attempts
	MaxNs   int64 // slowest successful attempt
}

// Transport implements mpc.Transport over TCP workers. Not safe for
// concurrent use — the owning Cluster serializes all calls, matching the
// interface contract.
type Transport struct {
	cfg    Config
	conns  []net.Conn // per worker; nil when not connected
	dead   []bool     // per worker
	assign []int      // logical machine → worker index
	seq    uint64     // last sequenced-op seq issued
	stats  Stats

	sink      *transportSink // nil when not instrumented
	traceRoot *obs.Span      // parent of per-attempt wire spans; nil disables
	traceID   uint64
	tracing   bool

	mu sync.Mutex // guards Stats reads against the owner's op stream
}

var _ mpc.Transport = (*Transport)(nil)

// Dial connects to the configured workers and verifies each with a
// handshake. Workers that fail the initial handshake fail Dial outright —
// starting degraded is a configuration error, not a runtime fault.
func Dial(cfg Config) (*Transport, error) {
	if len(cfg.Addrs) == 0 {
		return nil, fmt.Errorf("%w: no worker addresses", mpc.ErrTransport)
	}
	if cfg.Machines <= 0 {
		return nil, fmt.Errorf("%w: machine count %d", mpc.ErrTransport, cfg.Machines)
	}
	t := &Transport{
		cfg:    cfg,
		conns:  make([]net.Conn, len(cfg.Addrs)),
		dead:   make([]bool, len(cfg.Addrs)),
		assign: make([]int, cfg.Machines),
	}
	for m := 0; m < cfg.Machines; m++ {
		t.assign[m] = m % len(cfg.Addrs)
	}
	for w := range cfg.Addrs {
		conn, err := t.dial(w)
		if err != nil {
			t.Close()
			return nil, fmt.Errorf("%w: worker %d (%s) handshake: %v", mpc.ErrTransport, w, cfg.Addrs[w], err)
		}
		t.conns[w] = conn
		if err := t.exchange(w, Frame{Op: OpHello}); err != nil {
			t.Close()
			return nil, fmt.Errorf("%w: worker %d (%s) handshake: %v", mpc.ErrTransport, w, cfg.Addrs[w], err)
		}
	}
	return t, nil
}

func (t *Transport) Name() string  { return "tcp" }
func (t *Transport) Machines() int { return len(t.assign) }

// Stats returns a snapshot of the transport's counters. The PerOp map is
// deep-copied; callers own the result.
func (t *Transport) Stats() Stats {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := t.stats
	if t.stats.PerOp != nil {
		s.PerOp = make(map[string]OpStats, len(t.stats.PerOp))
		for k, v := range t.stats.PerOp {
			s.PerOp[k] = v
		}
	}
	return s
}

// Instrument attaches a metrics registry: the transport's counters and
// per-op latency histograms appear as mpcnet_* series. Call before the
// first op; observational only.
func (t *Transport) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	t.sink = newTransportSink(reg)
}

// EnableTracing turns on distributed tracing: every sequenced frame is
// stamped with (traceID, per-attempt span id) and every op attempt opens
// a child span under root covering dial + request + response — the
// coordinator's view of wire time, to be read against the worker's
// service-time spans. A nil root disables. Call before the first op.
//
// The per-attempt span id is seq<<8|attempt, so a worker-side span's
// parent is recomputable from the coordinator span's own seq and attempt
// metrics — that is what lets tests account for every wire op, retries
// included, across the merged forest.
func (t *Transport) EnableTracing(root *obs.Span, traceID uint64) {
	t.traceRoot = root
	t.traceID = traceID
	t.tracing = root != nil
}

// LiveWorkers reports how many workers are still accepting ops.
func (t *Transport) LiveWorkers() int {
	n := 0
	for _, d := range t.dead {
		if !d {
			n++
		}
	}
	return n
}

func (t *Transport) dial(w int) (net.Conn, error) {
	conn, err := net.DialTimeout("tcp", t.cfg.Addrs[w], t.cfg.dialTimeout())
	if err != nil {
		return nil, err
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		_ = tc.SetNoDelay(true)
	}
	return conn, nil
}

// exchange performs one framed request/response on worker w's live
// connection under the op deadline. It does NOT retry; op does.
func (t *Transport) exchange(w int, req Frame) error {
	_, err := t.exchangeResp(w, req)
	return err
}

func (t *Transport) exchangeResp(w int, req Frame) (Frame, error) {
	conn := t.conns[w]
	if conn == nil {
		return Frame{}, fmt.Errorf("no connection")
	}
	deadline := time.Now().Add(t.cfg.opTimeout())
	if err := conn.SetDeadline(deadline); err != nil {
		return Frame{}, err
	}
	buf := AppendFrame(make([]byte, 0, headerLen+len(req.Payload)+trailerLen), req)
	if _, err := conn.Write(buf); err != nil {
		return Frame{}, err
	}
	t.mu.Lock()
	t.stats.BytesSent += int64(len(buf))
	t.mu.Unlock()
	t.sink.addBytes(int64(len(buf)), 0)
	resp, err := ReadFrame(conn)
	if err != nil {
		return Frame{}, err
	}
	received := int64(frameWireLen(resp))
	t.mu.Lock()
	t.stats.BytesReceived += received
	t.mu.Unlock()
	t.sink.addBytes(0, received)
	if resp.Seq != req.Seq {
		return Frame{}, fmt.Errorf("%w: response seq %d for request seq %d", ErrWire, resp.Seq, req.Seq)
	}
	return resp, nil
}

// op runs one sequenced op against the worker hosting machine m, with
// the full retry/redial/degrade ladder. On success returns the response
// frame; on exhaustion the hosting worker is marked dead, m (and its
// co-hosted machines) are remapped, and the returned error wraps
// mpc.ErrTransport.
func (t *Transport) op(opCode Op, m int, payload []byte) (Frame, error) {
	w := t.assign[m]
	if t.dead[w] {
		// Should not happen — remap keeps assignments live — but a fully
		// dead cluster can leave stale assignments behind.
		return Frame{}, fmt.Errorf("%w: machine %d assigned to dead worker %d", mpc.ErrTransport, m, w)
	}
	return t.opWorker(w, opCode, int32(m), payload)
}

// opWorker runs one sequenced op against a specific worker.
func (t *Transport) opWorker(w int, opCode Op, machine int32, payload []byte) (Frame, error) {
	t.seq++
	req := Frame{Op: opCode, Seq: t.seq, Machine: machine, Payload: payload}

	var lastErr error
	attempts := t.cfg.Retry.maxAttempts()
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			t.mu.Lock()
			t.stats.Retries++
			t.mu.Unlock()
			if t.sink != nil {
				t.sink.retries.Inc()
			}
			t.cfg.Retry.sleep(t.cfg.Retry.Backoff(req.Seq, attempt-1))
		}

		// One wire span per ATTEMPT, not per op: a retried op shows up as
		// two spans, which is exactly how it spent the wall clock. The
		// span id stamped on the frame is seq<<8|attempt so the worker's
		// service span can name its true parent.
		var span *obs.Span
		if t.tracing {
			req.Traced = true
			req.Trace = TraceContext{TraceID: t.traceID, SpanID: req.Seq<<8 | uint64(attempt), Kind: opCode}
			span = t.traceRoot.Child(opCode.String())
			span.Add("seq", int64(req.Seq))
			span.Add("machine", int64(machine))
			span.Add("attempt", int64(attempt))
			span.Add("worker", int64(w))
		}
		start := time.Now()

		if t.conns[w] == nil {
			conn, err := t.dial(w)
			if err != nil {
				t.endAttempt(span, opCode, start, true)
				lastErr = err
				continue
			}
			t.conns[w] = conn
			t.mu.Lock()
			t.stats.Redials++
			t.mu.Unlock()
			if t.sink != nil {
				t.sink.redials.Inc()
			}
		}
		resp, err := t.exchangeResp(w, req)
		if err != nil {
			t.conns[w].Close()
			t.conns[w] = nil
			t.endAttempt(span, opCode, start, true)
			lastErr = err
			continue
		}
		if resp.Op == RespErr {
			// The worker is alive but refused the op. Retrying the same
			// bytes cannot succeed; fail without killing the worker.
			t.endAttempt(span, opCode, start, true)
			return Frame{}, fmt.Errorf("%w: worker %d rejected %s seq %d: %s",
				mpc.ErrTransport, w, opCode, req.Seq, resp.Payload)
		}
		span.Add("resp_bytes", int64(len(resp.Payload)))
		t.endAttempt(span, opCode, start, false)
		t.mu.Lock()
		t.stats.Ops++
		t.mu.Unlock()
		return resp, nil
	}

	t.markDead(w)
	return Frame{}, fmt.Errorf("%w: worker %d (%s) unreachable after %d attempts (%s machine %d): %v",
		mpc.ErrTransport, w, t.cfg.Addrs[w], attempts, opCode, machine, lastErr)
}

// endAttempt closes one attempt's wire span and records its latency and
// outcome in both the PerOp stats and the obs sink.
func (t *Transport) endAttempt(span *obs.Span, opCode Op, start time.Time, failed bool) {
	if failed {
		span.Add("failed", 1)
	}
	span.End()
	d := time.Since(start)
	t.sink.observeAttempt(opCode, d.Seconds(), failed)
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.stats.PerOp == nil {
		t.stats.PerOp = make(map[string]OpStats)
	}
	s := t.stats.PerOp[opCode.String()]
	if failed {
		s.Errors++
	} else {
		s.Ops++
		s.TotalNs += d.Nanoseconds()
		if d.Nanoseconds() > s.MaxNs {
			s.MaxNs = d.Nanoseconds()
		}
	}
	t.stats.PerOp[opCode.String()] = s
}

// Reset clears every live worker's stores and sequence state, beginning a
// new session epoch. This is what lets one worker fleet serve a sequence
// of independent clusters (an mpcbench run dials a fresh transport per
// experiment cluster against the same processes).
func (t *Transport) Reset() error {
	for w := range t.cfg.Addrs {
		if t.dead[w] {
			continue
		}
		if _, err := t.opWorker(w, OpReset, -1, nil); err != nil {
			return err
		}
	}
	return nil
}

// markDead declares worker w dead and remaps its logical machines onto
// the survivors round-robin. The remapped machines hold stale (empty)
// stores until the next Restore rewrites them — which is exactly what the
// resilient driver does upon seeing the transport error.
func (t *Transport) markDead(w int) {
	if t.dead[w] {
		return
	}
	t.dead[w] = true
	if t.conns[w] != nil {
		t.conns[w].Close()
		t.conns[w] = nil
	}
	var survivors []int
	for i, d := range t.dead {
		if !d {
			survivors = append(survivors, i)
		}
	}
	t.mu.Lock()
	t.stats.DeadWorkers++
	t.mu.Unlock()
	if t.sink != nil {
		t.sink.dead.Inc()
	}
	if len(survivors) == 0 {
		return
	}
	next := 0
	remapped := 0
	for m, hw := range t.assign {
		if hw != w {
			continue
		}
		t.assign[m] = survivors[next%len(survivors)]
		next++
		remapped++
	}
	t.mu.Lock()
	t.stats.Remapped += remapped
	t.mu.Unlock()
	if t.sink != nil {
		t.sink.remapped.Add(int64(remapped))
	}
}

// Read fetches machine m's store. Remote reads decode into fresh slices,
// so callers own the result outright.
func (t *Transport) Read(m int) ([]mpc.Record, error) {
	resp, err := t.op(OpRead, m, nil)
	if err != nil {
		return nil, err
	}
	recs, err := mpc.DecodeRecords(resp.Payload)
	if err != nil {
		// CRC passed but the payload is not a record slice: a worker-side
		// bug or memory corruption. Not retryable.
		return nil, fmt.Errorf("%w: read machine %d: %v", mpc.ErrTransport, m, err)
	}
	return recs, nil
}

// Write replaces machine m's store.
func (t *Transport) Write(m int, recs []mpc.Record) error {
	_, err := t.op(OpWrite, m, mpc.EncodeRecords(recs))
	return err
}

// Append appends recs to machine m's store, preserving order.
func (t *Transport) Append(m int, recs []mpc.Record) error {
	if len(recs) == 0 {
		return nil
	}
	_, err := t.op(OpAppend, m, mpc.EncodeRecords(recs))
	return err
}

// Words returns machine m's resident word footprint, computed worker-side
// so the residency check costs a dozen bytes, not the whole store.
func (t *Transport) Words(m int) (int, error) {
	resp, err := t.op(OpWords, m, nil)
	if err != nil {
		return 0, err
	}
	v, n := binary.Uvarint(resp.Payload)
	if n <= 0 {
		return 0, fmt.Errorf("%w: words machine %d: bad payload", mpc.ErrTransport, m)
	}
	return int(v), nil
}

// Grow adds logical machines with empty stores, assigned round-robin over
// the live workers.
func (t *Transport) Grow(extra int) error {
	var survivors []int
	for i, d := range t.dead {
		if !d {
			survivors = append(survivors, i)
		}
	}
	if len(survivors) == 0 {
		return fmt.Errorf("%w: grow with no surviving workers", mpc.ErrTransport)
	}
	base := len(t.assign)
	for i := 0; i < extra; i++ {
		t.assign = append(t.assign, survivors[(base+i)%len(survivors)])
	}
	return nil
}

// Close closes all worker connections. Worker processes are owned by the
// spawner, not the transport, and keep running.
func (t *Transport) Close() error {
	for i, conn := range t.conns {
		if conn != nil {
			conn.Close()
			t.conns[i] = nil
		}
	}
	return nil
}
