// Worker: the remote half of the TCP record plane. A worker is a record
// store server — it holds the resident records of whichever logical
// machines the coordinator routes to it and answers Read/Write/Append/
// Words ops. All computation stays on the coordinator (RoundFunc closures
// cannot cross a process boundary), so the worker's whole job is to be
// the durable — or, in fault drills, deliberately mortal — home of the
// data plane.
//
// Idempotency: the worker tracks the highest sequenced op it has applied
// and caches that op's response. A retried frame (same seq) gets the
// cached response back without re-applying — an Append delivered twice
// lands once. A frame with a smaller seq than the high-water mark is a
// stale replay and is refused.
package mpcnet

import (
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"sync"
	"syscall"
	"time"

	"mpctree/internal/mpc"
	"mpctree/internal/obs"
)

// Worker serves machine stores over TCP. Safe for the sequential-
// connection pattern the coordinator uses (one live connection, redialed
// after failures); concurrent connections are serialized per op.
type Worker struct {
	mu     sync.Mutex
	stores map[int32][]mpc.Record

	// Incremental word accounting mirrors stores so the residency gauge
	// never needs an O(total) sweep on the op path.
	machineWords map[int32]int
	totalWords   int

	lastSeq  uint64
	lastResp Frame
	haveResp bool

	sink      *workerSink // nil when not instrumented
	traceRoot *obs.Span   // parent of per-op service spans; nil disables

	ops      int // sequenced ops processed (the die-after trigger counts these)
	dieAfter int // kill self after this many ops; 0 disables
	// KillProcess selects the death mode when dieAfter trips: true sends
	// SIGKILL to the own process (cmd/mpcworker — a real crash, no
	// deferred cleanup runs); false closes the listener and connection
	// (in-process tests — as dead as a goroutine can get).
	KillProcess bool

	lnMu sync.Mutex
	ln   net.Listener

	// Logf, when set, receives one line per lifecycle event (connection
	// accepted, death trip). Op-level logging would swamp real runs.
	Logf func(format string, args ...any)
}

// NewWorker returns an empty worker.
func NewWorker() *Worker {
	return &Worker{stores: make(map[int32][]mpc.Record), machineWords: make(map[int32]int)}
}

// Instrument attaches a metrics registry: per-op service-time histograms,
// dedup/session counters, byte counters, and the resident-words gauges
// appear as mpcworker_* series. Call before serving; observational only.
func (w *Worker) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	w.mu.Lock()
	w.sink = newWorkerSink(reg)
	w.mu.Unlock()
}

// TraceRoot returns (creating on first call) the worker's persistent span
// root. Once it exists, every TRACED frame gets a child service span
// carrying the coordinator's trace/parent-span ids as metrics — untraced
// traffic never grows the tree, which is what bounds it. Hand the root to
// the debug server so /trace?format=json serves the forest.
func (w *Worker) TraceRoot() *obs.Span {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.traceRoot == nil {
		w.traceRoot = obs.NewSpan("mpcworker")
	}
	return w.traceRoot
}

// SetDieAfter arms the crash trigger: the worker dies upon processing its
// n-th sequenced op, BEFORE sending the response — the coordinator
// observes a mid-op connection loss, the worst-timed failure the
// protocol must survive. n ≤ 0 disarms.
func (w *Worker) SetDieAfter(n int) {
	w.mu.Lock()
	w.dieAfter = n
	w.mu.Unlock()
}

// Serve accepts connections on ln until the listener closes. Each
// connection is handled on its own goroutine; op handling is serialized
// by the worker's lock.
func (w *Worker) Serve(ln net.Listener) error {
	w.lnMu.Lock()
	w.ln = ln
	w.lnMu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		if w.Logf != nil {
			w.Logf("mpcworker: accepted %s", conn.RemoteAddr())
		}
		go w.serveConn(conn)
	}
}

func (w *Worker) serveConn(conn net.Conn) {
	defer conn.Close()
	for {
		f, err := ReadFrame(conn)
		if err != nil {
			// Torn or closed connection: the coordinator redials and
			// retries under the original seq; nothing to clean up.
			return
		}
		if w.sink != nil {
			w.sink.reqBytes.Add(int64(frameWireLen(f)))
		}
		resp := w.handle(conn, f)
		// Echo the trace context on every response — including cached
		// dedup replays and refusals — so the coordinator can pin each
		// response to the attempt that elicited it.
		resp.Traced, resp.Trace = f.Traced, f.Trace
		if w.sink != nil {
			w.sink.respBytes.Add(int64(frameWireLen(resp)))
		}
		if err := WriteFrame(conn, resp); err != nil {
			return
		}
	}
}

// handle applies one op and returns its response. Dedup and the die-after
// trigger both live here, under the lock.
func (w *Worker) handle(conn net.Conn, f Frame) Frame {
	w.mu.Lock()
	defer w.mu.Unlock()

	// Unsequenced ops: no dedup, no death trigger.
	if f.Seq == 0 {
		switch f.Op {
		case OpHello, OpPing:
			return Frame{Op: RespOK, Seq: 0, Machine: f.Machine}
		}
		return errFrame(f, "unsequenced %s op", f.Op)
	}

	switch {
	case f.Seq == w.lastSeq && w.haveResp:
		// Duplicate of the op just applied: replay the cached response.
		if w.sink != nil {
			w.sink.dedupHits.Inc()
		}
		return w.lastResp
	case f.Seq <= w.lastSeq && f.Op != OpReset:
		// OpReset is exempt: it begins a new session epoch, so a fresh
		// coordinator's low seqs must not look stale next to the
		// high-water mark its predecessor left behind.
		if w.sink != nil {
			w.sink.staleRefused.Inc()
		}
		return errFrame(f, "stale seq %d (high-water %d)", f.Seq, w.lastSeq)
	}

	w.ops++
	if w.dieAfter > 0 && w.ops >= w.dieAfter {
		w.die(conn)
		// In-process death: the connection is gone, the response is
		// never sent. Return value is written to a closed conn and lost.
		return Frame{Op: RespErr, Seq: f.Seq, Machine: f.Machine}
	}

	// A service span per TRACED frame, child of the coordinator attempt
	// span named by the frame's trace context. Timing wraps apply() only:
	// the delta between this span and the coordinator's wire span is the
	// network plus framing, which is the comparison the merged timeline
	// exists to show.
	var span *obs.Span
	if f.Traced && w.traceRoot != nil {
		span = w.traceRoot.Child(f.Op.String())
		span.Add("seq", int64(f.Seq))
		span.Add("machine", int64(f.Machine))
		span.Add("trace_id", int64(f.Trace.TraceID))
		span.Add("parent_span", int64(f.Trace.SpanID))
		span.Add("req_bytes", int64(len(f.Payload)))
	}
	start := time.Now()
	resp := w.apply(f)
	if w.sink != nil {
		w.sink.observeOp(f.Op, time.Since(start).Seconds())
		w.sink.setResident(w.totalWords)
	}
	span.End()

	w.lastSeq = f.Seq
	w.lastResp = resp
	w.haveResp = true
	return resp
}

// apply executes a sequenced op against the stores.
func (w *Worker) apply(f Frame) Frame {
	switch f.Op {
	case OpRead:
		return Frame{Op: RespData, Seq: f.Seq, Machine: f.Machine,
			Payload: mpc.EncodeRecords(w.stores[f.Machine])}
	case OpWrite:
		recs, err := mpc.DecodeRecords(f.Payload)
		if err != nil {
			return errFrame(f, "write payload: %v", err)
		}
		words := mpc.WordsOf(recs)
		w.totalWords += words - w.machineWords[f.Machine]
		if len(recs) == 0 {
			delete(w.stores, f.Machine)
			delete(w.machineWords, f.Machine)
		} else {
			w.stores[f.Machine] = recs
			w.machineWords[f.Machine] = words
		}
		return Frame{Op: RespOK, Seq: f.Seq, Machine: f.Machine}
	case OpAppend:
		recs, err := mpc.DecodeRecords(f.Payload)
		if err != nil {
			return errFrame(f, "append payload: %v", err)
		}
		if len(recs) > 0 {
			w.stores[f.Machine] = append(w.stores[f.Machine], recs...)
			words := mpc.WordsOf(recs)
			w.machineWords[f.Machine] += words
			w.totalWords += words
		}
		return Frame{Op: RespOK, Seq: f.Seq, Machine: f.Machine}
	case OpWords:
		words := mpc.WordsOf(w.stores[f.Machine])
		payload := make([]byte, 0, 10)
		payload = appendUvarint(payload, uint64(words))
		return Frame{Op: RespData, Seq: f.Seq, Machine: f.Machine, Payload: payload}
	case OpReset:
		w.stores = make(map[int32][]mpc.Record)
		w.machineWords = make(map[int32]int)
		w.totalWords = 0
		if w.sink != nil {
			w.sink.epochs.Inc()
		}
		return Frame{Op: RespOK, Seq: f.Seq, Machine: f.Machine}
	}
	return errFrame(f, "unknown op %d", byte(f.Op))
}

// die executes the armed crash. Called with the lock held.
func (w *Worker) die(conn net.Conn) {
	if w.Logf != nil {
		w.Logf("mpcworker: die-after tripped at op %d", w.ops)
	}
	if w.KillProcess {
		// A real crash: no response, no FIN handshake niceties, no
		// deferred cleanup — SIGKILL is not catchable.
		_ = syscall.Kill(os.Getpid(), syscall.SIGKILL)
		select {} // unreachable; Kill does not return control here
	}
	conn.Close()
	w.lnMu.Lock()
	if w.ln != nil {
		w.ln.Close()
	}
	w.lnMu.Unlock()
}

// Words reports the worker's total resident words (test observability).
func (w *Worker) Words() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	total := 0
	for _, st := range w.stores {
		total += mpc.WordsOf(st)
	}
	return total
}

// Store returns a copy of machine m's resident records (test observability).
func (w *Worker) Store(m int) []mpc.Record {
	w.mu.Lock()
	defer w.mu.Unlock()
	return append([]mpc.Record(nil), w.stores[int32(m)]...)
}

func errFrame(req Frame, format string, args ...any) Frame {
	return Frame{Op: RespErr, Seq: req.Seq, Machine: req.Machine,
		Payload: []byte(fmt.Sprintf(format, args...))}
}

func appendUvarint(dst []byte, v uint64) []byte {
	for v >= 0x80 {
		dst = append(dst, byte(v)|0x80)
		v >>= 7
	}
	return append(dst, byte(v))
}

// ListenAndServe binds addr (":0" style ephemeral ports allowed),
// announces the bound address on w's announce writer via the
// "MPCNET LISTEN <addr>" convention the spawner parses, and serves until
// the listener closes.
func (w *Worker) ListenAndServe(addr string, announce io.Writer) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	if announce != nil {
		fmt.Fprintf(announce, "MPCNET LISTEN %s\n", ln.Addr().String())
	}
	return w.Serve(ln)
}
