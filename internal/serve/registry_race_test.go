package serve

import (
	"sync"
	"sync/atomic"
	"testing"

	"mpctree/internal/obs"
)

// TestRegistrySwapConsistency hammers one name with concurrent
// Load+Reload+Get+Snapshot+List and pins the swap-consistency
// contract:
//
//   - generations observed by any single reader never decrease;
//   - every observed (generation → tree shape) pairing is a function:
//     two readers can never attribute different trees to the same
//     generation, which is exactly the torn state the pre-fix registry
//     could produce by running tree.Store and generation.Add outside
//     the swap lock;
//   - after the dust settles, the final generation equals the number of
//     successful installs and the per-tree gauges describe the final
//     snapshot, not whichever install's observe() ran last.
//
// Run under -race this also proves the data paths are race-clean.
func TestRegistrySwapConsistency(t *testing.T) {
	// Two distinguishable trees: loads alternate between them, so a torn
	// (tree, generation) pair is detectable by point count.
	treeA := buildTree(t, 1, 64)
	treeB := buildTree(t, 2, 96)
	dir := t.TempDir()
	pathA := dir + "/a.tree"
	pathB := dir + "/b.tree"
	saveTree(t, treeA, pathA)
	saveTree(t, treeB, pathB)

	oreg := obs.New()
	reg := NewRegistry(oreg)
	if err := reg.Load("t", pathA); err != nil {
		t.Fatal(err)
	}

	const (
		loaders   = 4
		reloaders = 2
		readers   = 4
		iters     = 200
	)
	var installs atomic.Int64 // successful Load/Reload calls
	installs.Add(1)           // the seed load above

	// genPoints records every observed generation → NumPoints pairing.
	var genPoints sync.Map // int64 → int
	observe := func(gen int64, points int) {
		if gen == 0 {
			return
		}
		if prev, loaded := genPoints.LoadOrStore(gen, points); loaded && prev.(int) != points {
			t.Errorf("generation %d observed with %d and %d points: torn (tree, generation) pair", gen, prev.(int), points)
		}
	}

	var wg sync.WaitGroup
	for i := 0; i < loaders; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < iters; j++ {
				path := pathA
				if (i+j)%2 == 1 {
					path = pathB
				}
				if err := reg.Load("t", path); err != nil {
					t.Errorf("load: %v", err)
					return
				}
				installs.Add(1)
			}
		}(i)
	}
	for i := 0; i < reloaders; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < iters; j++ {
				if err := reg.Reload("t"); err != nil {
					t.Errorf("reload: %v", err)
					return
				}
				installs.Add(1)
			}
		}()
	}
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var lastGen int64
			for j := 0; j < iters*4; j++ {
				tree, gen, err := reg.Snapshot("t")
				if err != nil {
					t.Errorf("snapshot: %v", err)
					return
				}
				if gen < lastGen {
					t.Errorf("generation went backwards: %d after %d", gen, lastGen)
					return
				}
				lastGen = gen
				observe(gen, tree.NumPoints())
				if _, err := reg.Get("t"); err != nil {
					t.Errorf("get: %v", err)
					return
				}
				for _, info := range reg.List() {
					observe(info.Generation, info.Points)
				}
			}
		}()
	}
	wg.Wait()

	// Final state: generation counts installs exactly, and the gauges
	// agree with the served snapshot.
	tree, gen, err := reg.Snapshot("t")
	if err != nil {
		t.Fatal(err)
	}
	if gen != installs.Load() {
		t.Errorf("final generation %d, want %d (one per successful install)", gen, installs.Load())
	}
	observe(gen, tree.NumPoints())
	var gaugePoints, gaugeGen float64
	for _, v := range oreg.Snapshot() {
		switch v.Name {
		case "serve_tree_points":
			gaugePoints = v.Value
		case "serve_tree_generation":
			gaugeGen = v.Value
		}
	}
	if gaugePoints != float64(tree.NumPoints()) {
		t.Errorf("serve_tree_points gauge %v, want %d (stale observe survived the swap lock)", gaugePoints, tree.NumPoints())
	}
	if gaugeGen != float64(gen) {
		t.Errorf("serve_tree_generation gauge %v, want %d", gaugeGen, gen)
	}
}
