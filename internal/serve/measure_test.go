package serve

import (
	"math"
	"testing"
)

func TestParseMeasureGood(t *testing.T) {
	m, err := ParseMeasure("0:1,5:0.5, 9 : 1.5 ", 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 10 {
		t.Fatalf("len = %d", len(m))
	}
	var total float64
	for _, v := range m {
		total += v
	}
	if math.Abs(total-1) > 1e-12 {
		t.Errorf("not normalised: total %v", total)
	}
	if math.Abs(m[0]-1.0/3) > 1e-12 || math.Abs(m[5]-0.5/3) > 1e-12 || math.Abs(m[9]-1.5/3) > 1e-12 {
		t.Errorf("masses wrong: %v", m)
	}
	// Bare indices mean mass 1; repeats accumulate.
	m, err = ParseMeasure("3,3,7", 8)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m[3]-2.0/3) > 1e-12 || math.Abs(m[7]-1.0/3) > 1e-12 {
		t.Errorf("bare-index masses wrong: %v", m)
	}
}

// The regression the serving layer inherited from treequery: ParseFloat
// accepts "NaN" and "Inf", and `mass < 0` is false for NaN, so
// non-finite masses sailed through and produced NaN/Inf EMDs.
func TestParseMeasureRejectsNonFinite(t *testing.T) {
	for _, s := range []string{
		"0:NaN", "0:nan", "1:Inf", "1:+Inf", "1:-Inf", "2:inf",
		"0:1,3:NaN", "0:NaN,3:1",
	} {
		if _, err := ParseMeasure(s, 10); err == nil {
			t.Errorf("ParseMeasure(%q) accepted a non-finite mass", s)
		}
	}
}

func TestParseMeasureRejectsBadInput(t *testing.T) {
	for _, s := range []string{
		"",                        // no mass at all
		" , , ",                   // only separators
		"0:-1",                    // negative mass
		"0:0",                     // zero total
		"-1:1",                    // negative index
		"10:1",                    // index == n
		"abc:1",                   // non-numeric index
		"0:xyz",                   // non-numeric mass
		"0:1e999",                 // overflows to +Inf in ParseFloat
		"0:1,5:-0.5",              // negative among positives
		"0:1e308,1:1e308,2:1e308", // finite masses, infinite total
	} {
		if _, err := ParseMeasure(s, 10); err == nil {
			t.Errorf("ParseMeasure(%q) accepted bad input", s)
		}
	}
}
