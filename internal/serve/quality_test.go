package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"mpctree/internal/core"
	"mpctree/internal/hst"
	"mpctree/internal/obs"
	"mpctree/internal/quality"
	"mpctree/internal/vec"
	"mpctree/internal/workload"
)

// newQualityFixture stands up a registry with auditing enabled over one
// tree ("t") whose points are on disk, plus the HTTP API.
func newQualityFixture(t *testing.T, reg *obs.Registry, logw *bytes.Buffer) (*Registry, *http.ServeMux, []vec.Point, string) {
	t.Helper()
	pts := workload.UniformLattice(5, 80, 4, 1<<10)
	tree, _, err := core.Embed(pts, core.Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	treePath := filepath.Join(dir, "t.tree")
	saveTree(t, tree, treePath)
	ptsPath := filepath.Join(dir, "t.csv")
	if err := workload.WritePoints(ptsPath, pts); err != nil {
		t.Fatal(err)
	}

	logger := jsonLogger(t, logw)
	registry := NewRegistry(reg)
	registry.EnableQuality(quality.Config{MaxPairs: 256, Seed: 11}, logger)
	if err := registry.Load("t", treePath); err != nil {
		t.Fatal(err)
	}
	if err := registry.LoadPoints("t", ptsPath); err != nil {
		t.Fatal(err)
	}
	mux := http.NewServeMux()
	NewServer(registry, Options{Obs: reg, Logger: logger}).RegisterMux(mux)
	return registry, mux, pts, treePath
}

func jsonLogger(t *testing.T, w *bytes.Buffer) *slog.Logger {
	t.Helper()
	lg, err := obs.NewLogger(w, slog.LevelDebug, "json")
	if err != nil {
		t.Fatal(err)
	}
	return lg
}

func TestBackgroundAuditAndQualityEndpoint(t *testing.T) {
	reg := obs.New()
	var logBuf bytes.Buffer
	registry, mux, pts, _ := newQualityFixture(t, reg, &logBuf)
	registry.WaitAudits()

	res, err := registry.Quality("t")
	if err != nil {
		t.Fatal(err)
	}
	if res == nil || res.Report == nil {
		t.Fatalf("no audit result after WaitAudits: %+v", res)
	}
	if res.Error != "" {
		t.Fatalf("audit failed: %s", res.Error)
	}
	if res.Generation != 1 {
		t.Fatalf("generation %d, want 1", res.Generation)
	}

	// The served report must agree with a direct offline audit on the
	// same seeded pairs — the round-tripped points are bit-identical.
	want, err := quality.Audit(mustGetTree(t, registry, "t"), pts, quality.Config{MaxPairs: 256, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.MeanRatio != want.MeanRatio || res.Report.MinRatio != want.MinRatio ||
		res.Report.SampledPairs != want.SampledPairs {
		t.Fatalf("served report %+v disagrees with offline audit %+v", res.Report, want)
	}
	if res.Report.DominationViolations != 0 {
		t.Fatalf("sequential tree reported %d domination violations", res.Report.DominationViolations)
	}

	// GET /v1/quality returns the same result; unknown names 404; the
	// filtered form matches the listing.
	rr := doGet(t, mux, "/v1/quality")
	if rr.Code != http.StatusOK {
		t.Fatalf("/v1/quality: %d %s", rr.Code, rr.Body.String())
	}
	var qresp QualityResponse
	if err := json.Unmarshal(rr.Body.Bytes(), &qresp); err != nil {
		t.Fatal(err)
	}
	if len(qresp.Results) != 1 || qresp.Results[0].Tree != "t" ||
		qresp.Results[0].Report.MeanRatio != want.MeanRatio {
		t.Fatalf("bad /v1/quality body: %s", rr.Body.String())
	}
	if rr := doGet(t, mux, "/v1/quality?tree=t"); rr.Code != http.StatusOK {
		t.Fatalf("/v1/quality?tree=t: %d", rr.Code)
	}
	if rr := doGet(t, mux, "/v1/quality?tree=nope"); rr.Code != http.StatusNotFound {
		t.Fatalf("/v1/quality?tree=nope: %d, want 404", rr.Code)
	}

	// quality_* series are live on the registry, labelled by tree.
	runs := 0.0
	for _, v := range reg.Snapshot() {
		if v.Name == "quality_audit_runs_total" && v.Labels["tree"] == "t" {
			runs += v.Value
		}
	}
	if runs != 1 {
		t.Fatalf("quality_audit_runs_total{tree=t} = %v, want 1", runs)
	}
}

func TestHotReloadReaudits(t *testing.T) {
	reg := obs.New()
	var logBuf bytes.Buffer
	registry, _, _, treePath := newQualityFixture(t, reg, &logBuf)
	registry.WaitAudits()

	// Overwrite the tree file with a different-seed embedding of the
	// SAME points, then hot reload: the auditor must re-run against the
	// new tree under the same audit seed.
	pts := workload.UniformLattice(5, 80, 4, 1<<10)
	tree2, _, err := core.Embed(pts, core.Options{Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	saveTree(t, tree2, treePath)
	first, _ := registry.Quality("t")
	if err := registry.Reload("t"); err != nil {
		t.Fatal(err)
	}
	registry.WaitAudits()
	second, err := registry.Quality("t")
	if err != nil {
		t.Fatal(err)
	}
	if second.Generation != first.Generation+1 {
		t.Fatalf("generation %d after reload, want %d", second.Generation, first.Generation+1)
	}
	want, err := quality.Audit(tree2, pts, quality.Config{MaxPairs: 256, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if second.Report.MeanRatio != want.MeanRatio {
		t.Fatalf("post-reload report mean %v, want %v (new tree, same audit seed)",
			second.Report.MeanRatio, want.MeanRatio)
	}
	runs := 0.0
	for _, v := range reg.Snapshot() {
		if v.Name == "quality_audit_runs_total" {
			runs += v.Value
		}
	}
	if runs != 2 {
		t.Fatalf("quality_audit_runs_total = %v after reload, want 2", runs)
	}
	// The audit trail landed in the structured log.
	if !strings.Contains(logBuf.String(), "quality_audit") {
		t.Fatal("no quality_audit record in the structured log")
	}
}

func TestAccessLogsCarryRequestIDs(t *testing.T) {
	reg := obs.New()
	var logBuf bytes.Buffer
	_, mux, _, _ := newQualityFixture(t, reg, &logBuf)

	rr := doGet(t, mux, "/v1/trees")
	if rr.Code != http.StatusOK {
		t.Fatalf("/v1/trees: %d", rr.Code)
	}
	gotID := rr.Header().Get("X-Request-ID")
	if gotID == "" {
		t.Fatal("no X-Request-ID response header")
	}

	// An incoming id is honored and echoed.
	req, _ := http.NewRequest(http.MethodGet, "/v1/quality", nil)
	req.Header.Set("X-Request-ID", "caller-supplied-7")
	rr2 := record(mux, req)
	if rr2.Header().Get("X-Request-ID") != "caller-supplied-7" {
		t.Fatalf("incoming request id not echoed: %q", rr2.Header().Get("X-Request-ID"))
	}

	// Every /v1/* request produced one parseable JSON access record with
	// the fields the spec names; a 4xx must log its real status.
	if rr := doGet(t, mux, "/v1/quality?tree=nope"); rr.Code != http.StatusNotFound {
		t.Fatalf("expected 404, got %d", rr.Code)
	}
	var access []map[string]any
	sc := bufio.NewScanner(bytes.NewReader(logBuf.Bytes()))
	for sc.Scan() {
		var rec map[string]any
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("non-JSON log line: %s", sc.Text())
		}
		if rec["msg"] == "request" {
			access = append(access, rec)
		}
	}
	if len(access) != 3 {
		t.Fatalf("got %d access records, want 3:\n%s", len(access), logBuf.String())
	}
	for _, rec := range access {
		for _, field := range []string{"request_id", "endpoint", "method", "path", "status", "duration_ms", "remote"} {
			if _, ok := rec[field]; !ok {
				t.Fatalf("access record missing %q: %v", field, rec)
			}
		}
	}
	if access[0]["request_id"] != gotID {
		t.Fatalf("logged request_id %v != response header %v", access[0]["request_id"], gotID)
	}
	if access[1]["request_id"] != "caller-supplied-7" {
		t.Fatalf("caller-supplied id not logged: %v", access[1]["request_id"])
	}
	if access[2]["status"] != float64(http.StatusNotFound) {
		t.Fatalf("404 logged as %v", access[2]["status"])
	}
}

func TestLoadPointsErrors(t *testing.T) {
	registry := NewRegistry(nil)
	if err := registry.LoadPoints("ghost", "nowhere.csv"); err == nil {
		t.Fatal("points for unregistered tree accepted")
	}
	tree, _, err := core.Embed(workload.UniformLattice(1, 16, 3, 64), core.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "t.tree")
	saveTree(t, tree, path)
	if err := registry.Load("t", path); err != nil {
		t.Fatal(err)
	}
	if err := registry.LoadPoints("t", filepath.Join(t.TempDir(), "missing.csv")); err == nil {
		t.Fatal("missing points file accepted")
	}
	// Without EnableQuality, points alone never spawn audits.
	ptsPath := filepath.Join(t.TempDir(), "t.csv")
	if err := workload.WritePoints(ptsPath, workload.UniformLattice(1, 16, 3, 64)); err != nil {
		t.Fatal(err)
	}
	if err := registry.LoadPoints("t", ptsPath); err != nil {
		t.Fatal(err)
	}
	registry.WaitAudits()
	if res, _ := registry.Quality("t"); res != nil {
		t.Fatal("audit ran without EnableQuality")
	}
}

// TestAuditPointMismatchSurfacesError: auditing against a points file
// whose count disagrees with the tree must record the error, not crash
// or publish metrics.
func TestAuditPointMismatchSurfacesError(t *testing.T) {
	reg := obs.New()
	registry := NewRegistry(reg)
	registry.EnableQuality(quality.Config{MaxPairs: 64}, nil)
	pts := workload.UniformLattice(2, 40, 4, 1<<10)
	tree, _, err := core.Embed(pts, core.Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	treePath := filepath.Join(dir, "t.tree")
	saveTree(t, tree, treePath)
	ptsPath := filepath.Join(dir, "short.csv")
	if err := workload.WritePoints(ptsPath, pts[:10]); err != nil {
		t.Fatal(err)
	}
	if err := registry.Load("t", treePath); err != nil {
		t.Fatal(err)
	}
	if err := registry.LoadPoints("t", ptsPath); err != nil {
		t.Fatal(err)
	}
	registry.WaitAudits()
	res, err := registry.Quality("t")
	if err != nil {
		t.Fatal(err)
	}
	if res == nil || res.Error == "" {
		t.Fatalf("point-count mismatch did not surface an error: %+v", res)
	}
	for _, v := range reg.Snapshot() {
		if v.Name == "quality_audit_runs_total" && v.Value != 0 {
			t.Fatal("failed audit incremented quality_audit_runs_total")
		}
	}
}

func mustGetTree(t *testing.T, r *Registry, name string) *hst.Tree {
	t.Helper()
	tree, err := r.Get(name)
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

func record(mux *http.ServeMux, req *http.Request) *httptest.ResponseRecorder {
	rr := httptest.NewRecorder()
	mux.ServeHTTP(rr, req)
	return rr
}

func doGet(t *testing.T, mux *http.ServeMux, path string) *httptest.ResponseRecorder {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, path, nil)
	if err != nil {
		t.Fatal(err)
	}
	return record(mux, req)
}
