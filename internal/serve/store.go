// Bridges the versioned tree store into the serving registry.
package serve

import (
	"mpctree/internal/hst"
	"mpctree/internal/treestore"
)

// StoreLoader adapts one named tree in a versioned store to the
// registry's TreeLoader contract. Every invocation — the initial load
// and every hot reload — re-reads the store's CURRENT version with full
// manifest verification (length, sha256, version), so pushing a new
// version into the store and broadcasting a reload rolls the fleet
// forward, and a corrupt store file can never displace a serving tree.
func StoreLoader(st *treestore.Store, name string) TreeLoader {
	return func() (*hst.Tree, Source, error) {
		t, m, err := st.Load(name)
		if err != nil {
			return nil, Source{}, err
		}
		return t, Source{
			Path:    st.TreePath(name, m.Version),
			Version: m.Version,
			SHA256:  m.SHA256,
		}, nil
	}
}
