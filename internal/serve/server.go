// The HTTP/JSON API. Every endpoint is a POST (except the GET tree
// listing) taking a small JSON document naming a tree; batch-shaped
// requests (dist pairs, knn points) fan out through internal/par, so a
// 10k-pair batch uses every core while staying bit-identical to a
// serial loop at any worker count (each shard writes only its own
// output slots). Handlers run under a per-request deadline with bounded
// request bodies, answer structured JSON errors, and meter themselves
// onto an obs.Registry.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"mpctree/internal/hst"
	"mpctree/internal/obs"
	"mpctree/internal/par"
)

// Options configures a Server. The zero value serves with GOMAXPROCS
// workers, a 30s deadline, and a 8 MiB body limit, unmetered.
type Options struct {
	Workers      int           // par fan-out width; 0 = GOMAXPROCS
	Deadline     time.Duration // per-request wall budget; 0 = 30s, <0 = none
	MaxBodyBytes int64         // request body cap; 0 = 8 MiB
	MaxBatch     int           // max items (pairs, points) per batch request; 0 = 1<<20
	Obs          *obs.Registry // metrics sink; nil = unmetered
	// Logger, if non-nil, emits one structured access-log record per
	// /v1/* request with a request id (honoring an incoming
	// X-Request-ID, else generated and echoed back in the response
	// header), the endpoint span name, method, path, status, duration,
	// and remote address.
	Logger *slog.Logger
	// Tracer, if non-nil, enables per-request span tracing: a sampled
	// request gets a root span ("serve <endpoint>") with decode,
	// registry_snapshot, compute_*, and encode children, continuing a
	// propagated traceparent context (the gate's) when one arrives and
	// echoing the root span id in X-Span-ID. Tracing is write-only —
	// responses are bit-identical with it on or off — and a nil tracer
	// costs the hot path one atomic pointer load.
	Tracer *obs.Tracer
	// SlowLog, if non-nil, emits a sampled structured record for
	// requests over its threshold (every Nth candidate).
	SlowLog *obs.SlowLog
	// SLOTarget is the per-request latency objective: requests over it
	// burn serve_slo_breaches_total and the bound is published as
	// serve_latency_objective_seconds. 0 publishes quantile gauges only.
	SLOTarget time.Duration
}

// DefaultLatencyBuckets spans 100µs–25s in powers of ~5 — wide enough
// for a leaf-cache-hot dist batch and a cold multi-megabyte EMD alike.
func DefaultLatencyBuckets() []float64 {
	return []float64{1e-4, 5e-4, 2.5e-3, 1.25e-2, 6.25e-2, 0.3125, 1.5625, 7.8125, 25}
}

// Server answers tree-metric queries from a Registry.
type Server struct {
	trees    *Registry
	workers  int
	deadline time.Duration
	maxBody  int64
	maxBatch int

	reg      *obs.Registry
	inflight *obs.Gauge

	tracer    atomic.Pointer[obs.Tracer] // nil = tracing disabled
	slow      *obs.SlowLog
	sloTarget float64 // latency objective in seconds; 0 = none

	logger  *slog.Logger
	startID string        // request-id prefix, unique per server start
	reqSeq  atomic.Uint64 // request-id sequence
}

// NewServer wraps a tree registry in the HTTP query API.
func NewServer(trees *Registry, opts Options) *Server {
	s := &Server{
		trees:    trees,
		workers:  par.Workers(opts.Workers),
		deadline: opts.Deadline,
		maxBody:  opts.MaxBodyBytes,
		maxBatch: opts.MaxBatch,
		reg:      opts.Obs,
		logger:   opts.Logger,
		slow:     opts.SlowLog,
		startID:  strconv.FormatInt(time.Now().UnixNano(), 36),
	}
	if opts.Tracer != nil {
		s.tracer.Store(opts.Tracer)
	}
	if opts.SLOTarget > 0 {
		s.sloTarget = opts.SLOTarget.Seconds()
	}
	if s.deadline == 0 {
		s.deadline = 30 * time.Second
	}
	if s.maxBody <= 0 {
		s.maxBody = 8 << 20
	}
	if s.maxBatch <= 0 {
		s.maxBatch = 1 << 20
	}
	if s.reg != nil {
		s.inflight = s.reg.Gauge("serve_inflight_requests", "Requests currently executing.")
	}
	return s
}

// RegisterMux mounts the /v1 API on mux.
func (s *Server) RegisterMux(mux *http.ServeMux) {
	mux.HandleFunc("/v1/dist", s.endpoint("dist", http.MethodPost, s.handleDist))
	mux.HandleFunc("/v1/knn", s.endpoint("knn", http.MethodPost, s.handleKNN))
	mux.HandleFunc("/v1/cut", s.endpoint("cut", http.MethodPost, s.handleCut))
	mux.HandleFunc("/v1/emd", s.endpoint("emd", http.MethodPost, s.handleEMD))
	mux.HandleFunc("/v1/medoid", s.endpoint("medoid", http.MethodPost, s.handleMedoid))
	mux.HandleFunc("/v1/trees", s.endpoint("trees", "", s.handleTrees))
	mux.HandleFunc("/v1/trees/reload", s.endpoint("reload", http.MethodPost, s.handleReload))
	mux.HandleFunc("/v1/quality", s.endpoint("quality", http.MethodGet, s.handleQuality))
}

// apiError carries an HTTP status through the handler return path.
type apiError struct {
	status int
	msg    string
}

func (e *apiError) Error() string { return e.msg }

func badRequest(format string, args ...any) error {
	return &apiError{status: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

func notFound(err error) error {
	return &apiError{status: http.StatusNotFound, msg: err.Error()}
}

// endpoint wraps a handler with the cross-cutting serving concerns:
// method check, body limit, per-request deadline, panic containment,
// and metering (request counter, error counter by status class, latency
// histogram, in-flight gauge). The handler body runs in its own
// goroutine so a blown deadline answers 503 immediately; the tree
// snapshot the stray computation holds stays valid regardless of
// reloads, so it finishes harmlessly and is discarded.
func (s *Server) endpoint(name, method string, fn func(*http.Request) (any, error)) http.HandlerFunc {
	var requests, errors4xx, errors5xx *obs.Counter
	var objective *obs.Objective
	if s.reg != nil {
		requests = s.reg.Counter("serve_requests_total", "API requests received.", "endpoint", name)
		errors4xx = s.reg.Counter("serve_errors_total", "API requests answered with an error status.", "endpoint", name, "class", "4xx")
		errors5xx = s.reg.Counter("serve_errors_total", "API requests answered with an error status.", "endpoint", name, "class", "5xx")
		latency := s.reg.Histogram("serve_request_seconds", "API request latency in seconds.", DefaultLatencyBuckets(), "endpoint", name)
		objective = obs.NewObjective(s.reg, "serve", name, latency, s.sloTarget)
	}
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		reqID := r.Header.Get(obs.RequestIDHeader)
		if reqID == "" {
			reqID = s.startID + "-" + strconv.FormatUint(s.reqSeq.Add(1), 10)
		}
		w.Header().Set(obs.RequestIDHeader, reqID)
		status := http.StatusOK
		// Tracing: the disabled path is exactly this one atomic load. A
		// sampled request opens a root span, continued from the gate's
		// propagated context when one arrives; the root span id is echoed
		// in X-Span-ID so the gate's forward span can nest this one.
		var span *obs.Span
		var tctx obs.TraceContext
		if tr := s.tracer.Load(); tr != nil {
			parent, _ := obs.ParseTraceParent(r.Header.Get(obs.TraceParentHeader))
			span, tctx = tr.StartRequest(parent, "serve "+name)
			if span != nil {
				w.Header().Set(obs.SpanIDHeader, obs.FormatSpanID(tctx.SpanID))
				defer func() {
					span.Add("status", int64(status))
					tr.Finish(span)
				}()
			}
		}
		if s.logger != nil || s.slow != nil {
			defer func() {
				d := time.Since(start)
				attrs := []any{
					"request_id", reqID, "endpoint", name,
					"method", r.Method, "path", r.URL.Path,
					"status", status,
					"duration_ms", float64(d.Microseconds()) / 1000,
					"remote", r.RemoteAddr}
				if span != nil {
					attrs = append(attrs, "trace_id", tctx.TraceIDString())
				}
				s.slow.Observe(d, attrs...)
				if s.logger != nil {
					s.logger.Info("request", attrs...)
				}
			}()
		}
		if requests != nil {
			requests.Inc()
			s.inflight.Add(1)
			defer s.inflight.Add(-1)
			defer func() { objective.Observe(time.Since(start).Seconds()) }()
		}
		fail := func(st int, msg string) {
			status = st
			if st >= 500 {
				if errors5xx != nil {
					errors5xx.Inc()
				}
			} else if errors4xx != nil {
				errors4xx.Inc()
			}
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(st)
			_ = json.NewEncoder(w).Encode(map[string]string{"error": msg})
		}
		if method != "" && r.Method != method {
			fail(http.StatusMethodNotAllowed, fmt.Sprintf("%s requires %s", r.URL.Path, method))
			return
		}
		r.Body = http.MaxBytesReader(w, r.Body, s.maxBody)

		ctx := r.Context()
		if span != nil {
			ctx = obs.ContextWithTrace(ctx, span, tctx)
		}
		if s.deadline > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, s.deadline)
			defer cancel()
		}
		type result struct {
			v   any
			err error
		}
		done := make(chan result, 1)
		go func() {
			defer func() {
				if p := recover(); p != nil {
					done <- result{err: &apiError{status: http.StatusInternalServerError,
						msg: fmt.Sprintf("internal: %v", p)}}
				}
			}()
			v, err := fn(r.WithContext(ctx))
			done <- result{v: v, err: err}
		}()
		select {
		case <-ctx.Done():
			fail(http.StatusServiceUnavailable, fmt.Sprintf("deadline exceeded after %v", s.deadline))
		case res := <-done:
			if res.err != nil {
				var ae *apiError
				if errors.As(res.err, &ae) {
					fail(ae.status, ae.msg)
				} else {
					fail(http.StatusInternalServerError, res.err.Error())
				}
				return
			}
			esp := span.Child("encode")
			w.Header().Set("Content-Type", "application/json")
			_ = json.NewEncoder(w).Encode(res.v)
			esp.End()
		}
	}
}

// decode unmarshals the request body into req, translating the
// MaxBytesReader overrun and JSON syntax errors into 4xx.
func decode(r *http.Request, req any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(req); err != nil {
		var maxErr *http.MaxBytesError
		if errors.As(err, &maxErr) {
			return &apiError{status: http.StatusRequestEntityTooLarge,
				msg: fmt.Sprintf("request body exceeds %d bytes", maxErr.Limit)}
		}
		return badRequest("bad request body: %v", err)
	}
	return nil
}

// tree resolves the named tree or answers 404.
func (s *Server) tree(name string) (*hst.Tree, error) {
	t, _, _, err := s.treeSnap(name)
	return t, err
}

// treeSnap resolves the named tree to its consistent (tree, generation,
// version) snapshot or answers 404. Handlers that echo the snapshot
// identity (dist, knn) use it so a caching front tier can key answers
// by content — store version when there is one, generation otherwise.
func (s *Server) treeSnap(name string) (*hst.Tree, int64, int64, error) {
	if name == "" {
		return nil, 0, 0, badRequest("missing \"tree\" field")
	}
	t, gen, src, err := s.trees.SnapshotSource(name)
	if err != nil {
		return nil, 0, 0, notFound(err)
	}
	return t, gen, src.Version, nil
}

// ---- /v1/dist ----

// DistRequest asks for tree distances over a batch of point-id pairs.
type DistRequest struct {
	Tree  string   `json:"tree"`
	Pairs [][2]int `json:"pairs"`
}

// DistResponse carries one distance per request pair, in order.
// Generation (and Version, when the tree comes from a versioned store)
// identifies the tree snapshot that answered — the answers are a pure
// function of (tree bytes, pairs), so any two responses with equal tree
// content and pairs are bit-identical.
type DistResponse struct {
	Tree       string    `json:"tree"`
	Generation int64     `json:"generation,omitempty"`
	Version    int64     `json:"version,omitempty"`
	Dists      []float64 `json:"dists"`
}

func (s *Server) handleDist(r *http.Request) (any, error) {
	span := obs.SpanFromContext(r.Context())
	var req DistRequest
	dsp := span.Child("decode")
	err := decode(r, &req)
	dsp.End()
	if err != nil {
		return nil, err
	}
	ssp := span.Child("registry_snapshot")
	t, gen, ver, err := s.treeSnap(req.Tree)
	ssp.End()
	if err != nil {
		return nil, err
	}
	if len(req.Pairs) == 0 {
		return nil, badRequest("empty \"pairs\"")
	}
	if len(req.Pairs) > s.maxBatch {
		return nil, badRequest("%d pairs exceeds batch limit %d", len(req.Pairs), s.maxBatch)
	}
	n := t.NumPoints()
	for i, p := range req.Pairs {
		if p[0] < 0 || p[0] >= n || p[1] < 0 || p[1] >= n {
			return nil, badRequest("pair %d = [%d,%d] out of range for %d points", i, p[0], p[1], n)
		}
	}
	out := make([]float64, len(req.Pairs))
	csp := span.Child("compute_dist")
	csp.Add("pairs", int64(len(req.Pairs)))
	// The request context carries the per-request deadline: a timed-out
	// batch stops its in-flight shards instead of computing a result
	// nobody will read.
	err = par.ForCtx(r.Context(), s.workers, len(req.Pairs), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = t.Dist(req.Pairs[i][0], req.Pairs[i][1])
		}
	})
	csp.End()
	if err != nil {
		return nil, err
	}
	return DistResponse{Tree: req.Tree, Generation: gen, Version: ver, Dists: out}, nil
}

// ---- /v1/knn ----

// KNNRequest asks for the K nearest neighbors (under the tree metric,
// excluding the query point itself) of each query point. "point" is
// shorthand for a single-element "points".
type KNNRequest struct {
	Tree   string `json:"tree"`
	Point  *int   `json:"point,omitempty"`
	Points []int  `json:"points,omitempty"`
	K      int    `json:"k"`
}

// KNNResponse carries one neighbor list per query point, in order.
// Generation and Version identify the answering tree snapshot (see
// DistResponse).
type KNNResponse struct {
	Tree       string           `json:"tree"`
	Generation int64            `json:"generation,omitempty"`
	Version    int64            `json:"version,omitempty"`
	Neighbors  [][]hst.Neighbor `json:"neighbors"`
}

func (s *Server) handleKNN(r *http.Request) (any, error) {
	span := obs.SpanFromContext(r.Context())
	var req KNNRequest
	dsp := span.Child("decode")
	err := decode(r, &req)
	dsp.End()
	if err != nil {
		return nil, err
	}
	ssp := span.Child("registry_snapshot")
	t, gen, ver, err := s.treeSnap(req.Tree)
	ssp.End()
	if err != nil {
		return nil, err
	}
	points := req.Points
	if req.Point != nil {
		points = append([]int{*req.Point}, points...)
	}
	if len(points) == 0 {
		return nil, badRequest("missing \"point\" or \"points\"")
	}
	if len(points) > s.maxBatch {
		return nil, badRequest("%d points exceeds batch limit %d", len(points), s.maxBatch)
	}
	if req.K <= 0 {
		return nil, badRequest("\"k\" must be positive, got %d", req.K)
	}
	n := t.NumPoints()
	for i, p := range points {
		if p < 0 || p >= n {
			return nil, badRequest("point %d = %d out of range for %d points", i, p, n)
		}
	}
	out := make([][]hst.Neighbor, len(points))
	csp := span.Child("compute_knn")
	csp.Add("points", int64(len(points)))
	csp.Add("k", int64(req.K))
	err = par.ForCtx(r.Context(), s.workers, len(points), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = t.KNN(points[i], req.K)
		}
	})
	csp.End()
	if err != nil {
		return nil, err
	}
	return KNNResponse{Tree: req.Tree, Generation: gen, Version: ver, Neighbors: out}, nil
}

// ---- /v1/cut ----

// CutRequest asks for the flat clustering at a diameter scale.
type CutRequest struct {
	Tree  string  `json:"tree"`
	Scale float64 `json:"scale"`
}

// CutResponse reports the clustering: per-point labels plus sizes.
type CutResponse struct {
	Tree     string  `json:"tree"`
	Scale    float64 `json:"scale"`
	Clusters int     `json:"clusters"`
	Labels   []int   `json:"labels"`
	Sizes    []int   `json:"sizes"`
}

func (s *Server) handleCut(r *http.Request) (any, error) {
	span := obs.SpanFromContext(r.Context())
	var req CutRequest
	dsp := span.Child("decode")
	err := decode(r, &req)
	dsp.End()
	if err != nil {
		return nil, err
	}
	ssp := span.Child("registry_snapshot")
	t, err := s.tree(req.Tree)
	ssp.End()
	if err != nil {
		return nil, err
	}
	if !(req.Scale > 0) || math.IsInf(req.Scale, 0) {
		return nil, badRequest("\"scale\" must be positive and finite, got %v", req.Scale)
	}
	csp := span.Child("compute_cut")
	csp.Add("points", int64(t.NumPoints()))
	labels := t.CutAtScale(req.Scale)
	csp.End()
	k := 0
	for _, l := range labels {
		if l+1 > k {
			k = l + 1
		}
	}
	sizes := make([]int, k)
	for _, l := range labels {
		sizes[l]++
	}
	return CutResponse{Tree: req.Tree, Scale: req.Scale, Clusters: k, Labels: labels, Sizes: sizes}, nil
}

// ---- /v1/emd ----

// EMDRequest asks for the Earth-Mover distance between two sparse
// measures in the "idx:mass,idx:mass" syntax treequery uses. Measures
// are normalised to total mass 1 before the flow is computed.
type EMDRequest struct {
	Tree string `json:"tree"`
	Mu   string `json:"mu"`
	Nu   string `json:"nu"`
}

// EMDResponse carries the tree-metric Earth-Mover distance.
type EMDResponse struct {
	Tree string  `json:"tree"`
	EMD  float64 `json:"emd"`
}

func (s *Server) handleEMD(r *http.Request) (any, error) {
	span := obs.SpanFromContext(r.Context())
	var req EMDRequest
	dsp := span.Child("decode")
	err := decode(r, &req)
	dsp.End()
	if err != nil {
		return nil, err
	}
	ssp := span.Child("registry_snapshot")
	t, err := s.tree(req.Tree)
	ssp.End()
	if err != nil {
		return nil, err
	}
	mu, err := ParseMeasure(req.Mu, t.NumPoints())
	if err != nil {
		return nil, badRequest("mu: %v", err)
	}
	nu, err := ParseMeasure(req.Nu, t.NumPoints())
	if err != nil {
		return nil, badRequest("nu: %v", err)
	}
	csp := span.Child("compute_emd")
	emd := t.EMD(mu, nu)
	csp.End()
	return EMDResponse{Tree: req.Tree, EMD: emd}, nil
}

// ---- /v1/medoid ----

// MedoidRequest asks for the 1-median of the tree metric.
type MedoidRequest struct {
	Tree string `json:"tree"`
}

// MedoidResponse reports the medoid point and its total distance.
type MedoidResponse struct {
	Tree      string  `json:"tree"`
	Point     int     `json:"point"`
	TotalDist float64 `json:"total_dist"`
}

func (s *Server) handleMedoid(r *http.Request) (any, error) {
	span := obs.SpanFromContext(r.Context())
	var req MedoidRequest
	dsp := span.Child("decode")
	err := decode(r, &req)
	dsp.End()
	if err != nil {
		return nil, err
	}
	ssp := span.Child("registry_snapshot")
	t, err := s.tree(req.Tree)
	ssp.End()
	if err != nil {
		return nil, err
	}
	csp := span.Child("compute_medoid")
	csp.Add("points", int64(t.NumPoints()))
	p, total := t.MedoidLeaf()
	csp.End()
	return MedoidResponse{Tree: req.Tree, Point: p, TotalDist: total}, nil
}

// ---- /v1/trees and /v1/trees/reload ----

// TreesResponse lists the registry.
type TreesResponse struct {
	Trees []TreeInfo `json:"trees"`
}

func (s *Server) handleTrees(r *http.Request) (any, error) {
	if r.Method != http.MethodGet {
		return nil, &apiError{status: http.StatusMethodNotAllowed, msg: "/v1/trees is GET; reload via POST /v1/trees/reload"}
	}
	return TreesResponse{Trees: s.trees.List()}, nil
}

// ReloadRequest names the tree to hot-reload from its registered file.
type ReloadRequest struct {
	Tree string `json:"tree"`
}

// ReloadResponse reports the post-reload state of the tree.
type ReloadResponse struct {
	Tree TreeInfo `json:"tree"`
}

func (s *Server) handleReload(r *http.Request) (any, error) {
	var req ReloadRequest
	if err := decode(r, &req); err != nil {
		return nil, err
	}
	if req.Tree == "" {
		return nil, badRequest("missing \"tree\" field")
	}
	if err := s.trees.Reload(req.Tree); err != nil {
		return nil, badRequest("%v", err)
	}
	for _, info := range s.trees.List() {
		if info.Name == req.Tree {
			return ReloadResponse{Tree: info}, nil
		}
	}
	return nil, fmt.Errorf("tree %q vanished after reload", req.Tree)
}

// ---- /v1/quality ----

// QualityResponse lists the latest audit result per audited tree. With
// ?tree=<name> it narrows to that tree (404 for unknown names; an empty
// result list for a known tree whose first audit has not finished).
type QualityResponse struct {
	Results []QualityResult `json:"results"`
}

func (s *Server) handleQuality(r *http.Request) (any, error) {
	if name := r.URL.Query().Get("tree"); name != "" {
		res, err := s.trees.Quality(name)
		if err != nil {
			return nil, notFound(err)
		}
		out := QualityResponse{Results: []QualityResult{}}
		if res != nil {
			out.Results = append(out.Results, *res)
		}
		return out, nil
	}
	results := s.trees.QualityAll()
	if results == nil {
		results = []QualityResult{}
	}
	return QualityResponse{Results: results}, nil
}
