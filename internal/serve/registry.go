// The tree registry: named, hot-reloadable tree embeddings. Reload
// safety rests on two facts — a finished hst.Tree is never mutated
// (see the Tree doc), and the registry swaps an atomic.Pointer — so a
// request that resolved its *hst.Tree before a reload keeps answering
// from the old tree while new requests see the new one. No locks are
// held while queries run, and no in-flight query is ever dropped or
// torn by a swap.
//
// Swap-consistency contract: the served state of one name is a single
// immutable snapshot (tree, generation, source) behind one atomic
// pointer, and every install — building the next snapshot, bumping the
// generation, updating the per-tree gauges, kicking the background
// audit — runs under that entry's swap mutex. Concurrent Load/Reload
// calls on the same name therefore serialize: generations increase by
// exactly one per successful install, a reader can never pair a new
// tree with a stale generation (or vice versa), and the gauges and
// audit attribution always describe a snapshot that was actually
// served. Readers (Get, Snapshot, List, the query handlers) never take
// the swap mutex: they load the snapshot pointer once and work with an
// internally consistent view.
package serve

import (
	"fmt"
	"log/slog"
	"os"
	"sort"
	"sync"
	"sync/atomic"

	"mpctree/internal/hst"
	"mpctree/internal/obs"
	"mpctree/internal/quality"
)

// Source records where a tree snapshot came from: a bare file path for
// direct loads, plus the manifest version and content hash when the
// tree was loaded from a versioned store (internal/treestore).
type Source struct {
	Path    string
	Version int64  // manifest version; 0 for direct file loads
	SHA256  string // manifest content hash; "" for direct file loads
}

// TreeLoader produces a fresh tree snapshot and its provenance. Load
// installs the result; Reload re-invokes the same loader, so a loader
// backed by a versioned store picks up new versions on reload.
type TreeLoader func() (*hst.Tree, Source, error)

// snapshot is the served state of one name at one instant. It is
// immutable after construction; the entry swaps whole snapshots.
type snapshot struct {
	tree       *hst.Tree
	generation int64 // successful installs of this name, starting at 1
	source     Source
}

// entry is one named tree: the served snapshot plus the loader it
// reloads through, and (when quality auditing is enabled) the audit
// ground-truth points and latest audit result.
type entry struct {
	name string

	// swapMu serializes installs: snapshot construction, the generation
	// bump, gauge updates, and audit kick-off happen as one unit. The
	// loader field is also guarded by it. Readers never take it.
	swapMu sync.Mutex
	load   TreeLoader
	cur    atomic.Pointer[snapshot]

	points  atomic.Pointer[pointSet]      // audit ground truth (nil = not registered)
	qresult atomic.Pointer[QualityResult] // latest completed audit
	qcol    *quality.Collector            // lazily built, guarded by Registry.mu
}

// TreeInfo describes one registry entry for /v1/trees and logs.
// Version and SHA256 are set only for trees loaded from a versioned
// store; treegate uses them to verify replica coherence.
type TreeInfo struct {
	Name       string `json:"name"`
	Path       string `json:"path"`
	Points     int    `json:"points"`
	Nodes      int    `json:"nodes"`
	Height     int    `json:"height"`
	Generation int64  `json:"generation"`
	Version    int64  `json:"version,omitempty"`
	SHA256     string `json:"sha256,omitempty"`
}

// Registry holds the named trees a server answers from. The mutex only
// guards the name table; tree access is a single atomic pointer load.
type Registry struct {
	mu      sync.Mutex
	entries map[string]*entry

	reg        *obs.Registry // nil = uninstrumented
	treesGauge *obs.Gauge
	reloads    *obs.Counter
	loadErrors *obs.Counter

	qcfg *quality.Config // nil = auditing disabled
	qlog *slog.Logger
	qwg  sync.WaitGroup
}

// NewRegistry returns an empty registry. reg may be nil; when set, the
// registry exports serve_trees_loaded, serve_tree_reloads_total,
// serve_tree_load_errors_total, and per-tree serve_tree_points /
// serve_tree_nodes / serve_tree_generation gauges.
func NewRegistry(reg *obs.Registry) *Registry {
	r := &Registry{entries: make(map[string]*entry), reg: reg}
	if reg != nil {
		r.treesGauge = reg.Gauge("serve_trees_loaded", "Trees currently loaded in the serving registry.")
		r.reloads = reg.Counter("serve_tree_reloads_total", "Successful tree loads and hot reloads.")
		r.loadErrors = reg.Counter("serve_tree_load_errors_total", "Tree load or reload attempts that failed (the previous tree keeps serving).")
	}
	return r
}

// readTreeFile loads and validates one tree file.
func readTreeFile(path string) (*hst.Tree, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	t, err := hst.ReadTree(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return t, nil
}

// FileLoader adapts a bare tree file to the TreeLoader contract.
func FileLoader(path string) TreeLoader {
	return func() (*hst.Tree, Source, error) {
		t, err := readTreeFile(path)
		if err != nil {
			return nil, Source{}, err
		}
		return t, Source{Path: path}, nil
	}
}

// observe updates the per-tree gauges after a successful install.
// Called with the entry's swapMu held, so gauge values always describe
// an installed snapshot.
func (r *Registry) observe(e *entry, snap *snapshot) {
	if r.reg == nil {
		return
	}
	r.reg.Gauge("serve_tree_points", "Data points in the named tree.", "tree", e.name).Set(float64(snap.tree.NumPoints()))
	r.reg.Gauge("serve_tree_nodes", "Arena nodes in the named tree.", "tree", e.name).Set(float64(snap.tree.NumNodes()))
	r.reg.Gauge("serve_tree_generation", "Load generation of the named tree (increments on hot reload).", "tree", e.name).Set(float64(snap.generation))
	r.reloads.Inc()
}

// install swaps the freshly loaded tree in as the entry's next
// snapshot. The whole sequence — generation bump, snapshot store,
// gauges, audit — runs under the entry's swap mutex, so concurrent
// installs of one name serialize and can never tear tree/generation/
// gauge/audit consistency.
func (r *Registry) install(e *entry, t *hst.Tree, src Source, loader TreeLoader) {
	e.swapMu.Lock()
	defer e.swapMu.Unlock()
	e.load = loader
	gen := int64(1)
	if old := e.cur.Load(); old != nil {
		gen = old.generation + 1
	}
	snap := &snapshot{tree: t, generation: gen, source: src}
	e.cur.Store(snap)
	r.observe(e, snap)
	r.maybeAudit(e, snap)
}

// Load reads the tree file at path and registers (or replaces) it under
// name. Replacing is an atomic hot swap: concurrent queries against the
// old tree complete unharmed.
func (r *Registry) Load(name, path string) error {
	return r.LoadWith(name, FileLoader(path))
}

// LoadWith registers (or replaces) name through an arbitrary loader —
// the path treeserve -store uses to load from a versioned tree store.
// The loader is retained: Reload re-invokes it.
func (r *Registry) LoadWith(name string, loader TreeLoader) error {
	if name == "" {
		return fmt.Errorf("serve: empty tree name")
	}
	t, src, err := loader()
	if err != nil {
		if r.loadErrors != nil {
			r.loadErrors.Inc()
		}
		return err
	}
	r.mu.Lock()
	e, ok := r.entries[name]
	if !ok {
		e = &entry{name: name}
		r.entries[name] = e
		if r.treesGauge != nil {
			r.treesGauge.Set(float64(len(r.entries)))
		}
	}
	r.mu.Unlock()
	r.install(e, t, src, loader)
	return nil
}

// Reload re-runs the named tree's loader and swaps the result in
// atomically. On any error — unknown name, unreadable or corrupt
// file — the currently served tree stays in place, so a bad file on
// disk can never take a healthy tree out of service.
func (r *Registry) Reload(name string) error {
	r.mu.Lock()
	e, ok := r.entries[name]
	r.mu.Unlock()
	if !ok {
		return fmt.Errorf("serve: unknown tree %q", name)
	}
	e.swapMu.Lock()
	loader := e.load
	e.swapMu.Unlock()
	if loader == nil {
		return fmt.Errorf("serve: tree %q has no loader", name)
	}
	t, src, err := loader()
	if err != nil {
		if r.loadErrors != nil {
			r.loadErrors.Inc()
		}
		return fmt.Errorf("serve: reload %q: %w (previous tree still serving)", name, err)
	}
	r.install(e, t, src, loader)
	return nil
}

// lookup resolves a name to its entry.
func (r *Registry) lookup(name string) (*entry, error) {
	r.mu.Lock()
	e, ok := r.entries[name]
	r.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("serve: unknown tree %q", name)
	}
	return e, nil
}

// Get resolves a named tree to the currently served snapshot. The
// returned *hst.Tree is immutable and remains fully usable even if the
// name is reloaded or removed afterwards.
func (r *Registry) Get(name string) (*hst.Tree, error) {
	t, _, err := r.Snapshot(name)
	return t, err
}

// Snapshot resolves a named tree to its current (tree, generation)
// pair. The pair is internally consistent — both fields come from one
// atomic snapshot load — which is what lets response caches key on
// generation without ever serving a stale one.
func (r *Registry) Snapshot(name string) (*hst.Tree, int64, error) {
	e, err := r.lookup(name)
	if err != nil {
		return nil, 0, err
	}
	snap := e.cur.Load()
	if snap == nil {
		return nil, 0, fmt.Errorf("serve: tree %q has no loaded snapshot", name)
	}
	return snap.tree, snap.generation, nil
}

// SnapshotSource is Snapshot plus the provenance of the served bytes —
// all four values from the same atomic snapshot load. Fronts that key
// caches globally (the gate) use the Source's store version, which,
// unlike per-process generations, is comparable across replicas.
func (r *Registry) SnapshotSource(name string) (*hst.Tree, int64, Source, error) {
	e, err := r.lookup(name)
	if err != nil {
		return nil, 0, Source{}, err
	}
	snap := e.cur.Load()
	if snap == nil {
		return nil, 0, Source{}, fmt.Errorf("serve: tree %q has no loaded snapshot", name)
	}
	return snap.tree, snap.generation, snap.source, nil
}

// List reports every entry, sorted by name. Each TreeInfo is read from
// one atomic snapshot, so tree shape, generation, and provenance are
// mutually consistent even while loads are in flight.
func (r *Registry) List() []TreeInfo {
	r.mu.Lock()
	entries := make([]*entry, 0, len(r.entries))
	for _, e := range r.entries {
		entries = append(entries, e)
	}
	r.mu.Unlock()
	sort.Slice(entries, func(i, j int) bool { return entries[i].name < entries[j].name })
	out := make([]TreeInfo, 0, len(entries))
	for _, e := range entries {
		info := TreeInfo{Name: e.name}
		if snap := e.cur.Load(); snap != nil {
			info.Path = snap.source.Path
			info.Version = snap.source.Version
			info.SHA256 = snap.source.SHA256
			info.Generation = snap.generation
			info.Points = snap.tree.NumPoints()
			info.Nodes = snap.tree.NumNodes()
			info.Height = snap.tree.Height()
		}
		out = append(out, info)
	}
	return out
}
