// The tree registry: named, hot-reloadable tree embeddings. Reload
// safety rests on two facts — a finished hst.Tree is never mutated
// (see the Tree doc), and the registry swaps an atomic.Pointer — so a
// request that resolved its *hst.Tree before a reload keeps answering
// from the old tree while new requests see the new one. No locks are
// held while queries run, and no in-flight query is ever dropped or
// torn by a swap.
package serve

import (
	"fmt"
	"log/slog"
	"os"
	"sort"
	"sync"
	"sync/atomic"

	"mpctree/internal/hst"
	"mpctree/internal/obs"
	"mpctree/internal/quality"
)

// entry is one named tree: the served pointer plus the file it reloads
// from, and (when quality auditing is enabled) the audit ground-truth
// points and latest audit result.
type entry struct {
	name       string
	path       string
	tree       atomic.Pointer[hst.Tree]
	generation atomic.Int64 // successful loads, starting at 1

	points  atomic.Pointer[pointSet]      // audit ground truth (nil = not registered)
	qresult atomic.Pointer[QualityResult] // latest completed audit
	qcol    *quality.Collector            // lazily built, guarded by Registry.mu
}

// TreeInfo describes one registry entry for /v1/trees and logs.
type TreeInfo struct {
	Name       string `json:"name"`
	Path       string `json:"path"`
	Points     int    `json:"points"`
	Nodes      int    `json:"nodes"`
	Height     int    `json:"height"`
	Generation int64  `json:"generation"`
}

// Registry holds the named trees a server answers from. The mutex only
// guards the name table; tree access is a single atomic pointer load.
type Registry struct {
	mu      sync.Mutex
	entries map[string]*entry

	reg        *obs.Registry // nil = uninstrumented
	treesGauge *obs.Gauge
	reloads    *obs.Counter
	loadErrors *obs.Counter

	qcfg *quality.Config // nil = auditing disabled
	qlog *slog.Logger
	qwg  sync.WaitGroup
}

// NewRegistry returns an empty registry. reg may be nil; when set, the
// registry exports serve_trees_loaded, serve_tree_reloads_total,
// serve_tree_load_errors_total, and per-tree serve_tree_points /
// serve_tree_nodes / serve_tree_generation gauges.
func NewRegistry(reg *obs.Registry) *Registry {
	r := &Registry{entries: make(map[string]*entry), reg: reg}
	if reg != nil {
		r.treesGauge = reg.Gauge("serve_trees_loaded", "Trees currently loaded in the serving registry.")
		r.reloads = reg.Counter("serve_tree_reloads_total", "Successful tree loads and hot reloads.")
		r.loadErrors = reg.Counter("serve_tree_load_errors_total", "Tree load or reload attempts that failed (the previous tree keeps serving).")
	}
	return r
}

// readTreeFile loads and validates one tree file.
func readTreeFile(path string) (*hst.Tree, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	t, err := hst.ReadTree(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return t, nil
}

// observe updates the per-tree gauges after a successful load.
func (r *Registry) observe(e *entry, t *hst.Tree) {
	if r.reg == nil {
		return
	}
	r.reg.Gauge("serve_tree_points", "Data points in the named tree.", "tree", e.name).Set(float64(t.NumPoints()))
	r.reg.Gauge("serve_tree_nodes", "Arena nodes in the named tree.", "tree", e.name).Set(float64(t.NumNodes()))
	r.reg.Gauge("serve_tree_generation", "Load generation of the named tree (increments on hot reload).", "tree", e.name).Set(float64(e.generation.Load()))
	r.reloads.Inc()
}

// Load reads the tree file at path and registers (or replaces) it under
// name. Replacing is an atomic hot swap: concurrent queries against the
// old tree complete unharmed.
func (r *Registry) Load(name, path string) error {
	if name == "" {
		return fmt.Errorf("serve: empty tree name")
	}
	t, err := readTreeFile(path)
	if err != nil {
		if r.loadErrors != nil {
			r.loadErrors.Inc()
		}
		return err
	}
	r.mu.Lock()
	e, ok := r.entries[name]
	if !ok {
		e = &entry{name: name}
		r.entries[name] = e
		if r.treesGauge != nil {
			r.treesGauge.Set(float64(len(r.entries)))
		}
	}
	e.path = path
	r.mu.Unlock()
	e.tree.Store(t)
	e.generation.Add(1)
	r.observe(e, t)
	r.maybeAudit(e)
	return nil
}

// Reload re-reads the named tree from its registered file and swaps it
// in atomically. On any error — unknown name, unreadable or corrupt
// file — the currently served tree stays in place, so a bad file on
// disk can never take a healthy tree out of service.
func (r *Registry) Reload(name string) error {
	r.mu.Lock()
	e, ok := r.entries[name]
	var path string
	if ok {
		path = e.path
	}
	r.mu.Unlock()
	if !ok {
		return fmt.Errorf("serve: unknown tree %q", name)
	}
	t, err := readTreeFile(path)
	if err != nil {
		if r.loadErrors != nil {
			r.loadErrors.Inc()
		}
		return fmt.Errorf("serve: reload %q: %w (previous tree still serving)", name, err)
	}
	e.tree.Store(t)
	e.generation.Add(1)
	r.observe(e, t)
	r.maybeAudit(e)
	return nil
}

// Get resolves a named tree to the currently served snapshot. The
// returned *hst.Tree is immutable and remains fully usable even if the
// name is reloaded or removed afterwards.
func (r *Registry) Get(name string) (*hst.Tree, error) {
	r.mu.Lock()
	e, ok := r.entries[name]
	r.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("serve: unknown tree %q", name)
	}
	t := e.tree.Load()
	if t == nil {
		return nil, fmt.Errorf("serve: tree %q has no loaded snapshot", name)
	}
	return t, nil
}

// List reports every entry, sorted by name.
func (r *Registry) List() []TreeInfo {
	r.mu.Lock()
	entries := make([]*entry, 0, len(r.entries))
	for _, e := range r.entries {
		entries = append(entries, e)
	}
	r.mu.Unlock()
	sort.Slice(entries, func(i, j int) bool { return entries[i].name < entries[j].name })
	out := make([]TreeInfo, 0, len(entries))
	for _, e := range entries {
		info := TreeInfo{Name: e.name, Path: e.path, Generation: e.generation.Load()}
		if t := e.tree.Load(); t != nil {
			info.Points = t.NumPoints()
			info.Nodes = t.NumNodes()
			info.Height = t.Height()
		}
		out = append(out, info)
	}
	return out
}
