// Online quality auditing for served trees. When the registry has
// points registered alongside a tree, every successful load or hot
// reload kicks off a background auditor goroutine that samples seeded
// point pairs, measures distortion ratios dist_T(p,q)/‖p−q‖₂ against
// the ORIGINAL Euclidean metric, and publishes the quality_* series
// (labelled tree=<name>) plus a JSON result served under /v1/quality.
// Audits run strictly off the query path: they hold an immutable tree
// snapshot, never block queries or reloads, and a result is only
// installed if no newer generation has been audited meanwhile.
package serve

import (
	"fmt"
	"log/slog"
	"sort"
	"time"

	"mpctree/internal/quality"
	"mpctree/internal/vec"
	"mpctree/internal/workload"
)

// pointSet binds a loaded point file to its path so /v1/quality can
// report provenance.
type pointSet struct {
	path string
	pts  []vec.Point
}

// QualityResult is one tree's latest audit outcome, served by
// /v1/quality.
type QualityResult struct {
	Tree          string          `json:"tree"`
	Generation    int64           `json:"generation"`
	PointsPath    string          `json:"points_path,omitempty"`
	AuditedUnixMs int64           `json:"audited_unix_ms"`
	DurationMs    float64         `json:"duration_ms"`
	Error         string          `json:"error,omitempty"`
	Report        *quality.Report `json:"report,omitempty"`
}

// EnableQuality turns on background auditing: every subsequent
// successful Load or Reload of a tree that has points registered (see
// LoadPoints) spawns an auditor goroutine with this configuration.
// Entries that already hold both a tree and points are audited
// immediately. logger may be nil.
func (r *Registry) EnableQuality(cfg quality.Config, logger *slog.Logger) {
	r.mu.Lock()
	r.qcfg = &cfg
	r.qlog = logger
	pending := make([]*entry, 0, len(r.entries))
	for _, e := range r.entries {
		pending = append(pending, e)
	}
	r.mu.Unlock()
	for _, e := range pending {
		r.maybeAudit(e, e.cur.Load())
	}
}

// LoadPoints reads the point file at path and attaches it to the named
// tree as the audit ground truth. The tree must already be registered.
// If auditing is enabled, an audit of the current snapshot starts
// immediately.
func (r *Registry) LoadPoints(name, path string) error {
	r.mu.Lock()
	e, ok := r.entries[name]
	r.mu.Unlock()
	if !ok {
		return fmt.Errorf("serve: points for unknown tree %q", name)
	}
	pts, err := workload.ReadPoints(path)
	if err != nil {
		return fmt.Errorf("serve: points for %q: %w", name, err)
	}
	e.points.Store(&pointSet{path: path, pts: pts})
	r.maybeAudit(e, e.cur.Load())
	return nil
}

// WaitAudits blocks until every in-flight background audit has
// finished. Tests and graceful shutdown use it; the serving path never
// does.
func (r *Registry) WaitAudits() { r.qwg.Wait() }

// Quality returns the latest audit result for the named tree (nil when
// no audit has completed yet).
func (r *Registry) Quality(name string) (*QualityResult, error) {
	r.mu.Lock()
	e, ok := r.entries[name]
	r.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("serve: unknown tree %q", name)
	}
	return e.qresult.Load(), nil
}

// QualityAll reports the latest audit result for every tree that has
// one, sorted by tree name.
func (r *Registry) QualityAll() []QualityResult {
	r.mu.Lock()
	entries := make([]*entry, 0, len(r.entries))
	for _, e := range r.entries {
		entries = append(entries, e)
	}
	r.mu.Unlock()
	out := make([]QualityResult, 0, len(entries))
	for _, e := range entries {
		if res := e.qresult.Load(); res != nil {
			out = append(out, *res)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tree < out[j].Tree })
	return out
}

// collector lazily builds the per-tree quality collector. Registration
// on the obs registry is idempotent, so reload-recreated collectors
// share cells.
func (r *Registry) collector(e *entry, cfg quality.Config) *quality.Collector {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e.qcol == nil {
		e.qcol = quality.NewCollector(r.reg, cfg, "tree", e.name)
	}
	return e.qcol
}

// maybeAudit spawns a background audit of the given snapshot when
// auditing is enabled and both a tree and points are present. The
// snapshot pins the audited (tree, generation) pair, so the audit is
// always attributed to a state that was actually installed.
func (r *Registry) maybeAudit(e *entry, snap *snapshot) {
	r.mu.Lock()
	cfgp := r.qcfg
	logger := r.qlog
	r.mu.Unlock()
	if cfgp == nil || snap == nil {
		return
	}
	t := snap.tree
	ps := e.points.Load()
	if ps == nil {
		return
	}
	cfg := *cfgp
	gen := snap.generation
	col := r.collector(e, cfg)
	r.qwg.Add(1)
	go func() {
		defer r.qwg.Done()
		start := time.Now()
		rep, err := quality.Audit(t, ps.pts, cfg)
		res := &QualityResult{
			Tree:          e.name,
			Generation:    gen,
			PointsPath:    ps.path,
			AuditedUnixMs: start.UnixMilli(),
			DurationMs:    float64(time.Since(start).Microseconds()) / 1000,
		}
		if err != nil {
			res.Error = err.Error()
			if logger != nil {
				logger.Error("quality_audit_failed", "tree", e.name, "generation", gen, "error", err.Error())
			}
		} else {
			res.Report = rep
			col.ObserveAudit(rep)
			col.ObserveLevels(rep.Levels)
			if logger != nil {
				logger.Info("quality_audit", "tree", e.name, "generation", gen,
					"pairs", rep.SampledPairs, "mean_ratio", rep.MeanRatio,
					"max_ratio", rep.MaxRatio, "min_ratio", rep.MinRatio,
					"domination_violations", rep.DominationViolations,
					"bound_violated", rep.BoundViolated,
					"duration_ms", res.DurationMs)
			}
		}
		// Install unless a newer generation's audit already landed: a
		// reload racing this audit re-audits with a higher generation,
		// and that result must win regardless of goroutine ordering.
		for {
			old := e.qresult.Load()
			if old != nil && old.Generation > res.Generation {
				return
			}
			if e.qresult.CompareAndSwap(old, res) {
				return
			}
		}
	}()
}
