package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"mpctree/internal/core"
	"mpctree/internal/hst"
	"mpctree/internal/obs"
	"mpctree/internal/workload"
)

// buildTree embeds a seeded synthetic point set — the same artifact
// `treembed -save` produces.
func buildTree(t *testing.T, seed uint64, n int) *hst.Tree {
	t.Helper()
	pts := workload.UniformLattice(seed, n, 4, 1<<10)
	tree, _, err := core.Embed(pts, core.Options{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

// saveTree writes a tree the way treembed -save does.
func saveTree(t *testing.T, tree *hst.Tree, path string) {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tree.WriteTo(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// newTestServer stands up a registry with one tree named "t" plus the
// full API on an httptest server. Returns the server, the tree, and the
// file path (for reload tests to overwrite).
func newTestServer(t *testing.T, opts Options) (*httptest.Server, *Registry, *hst.Tree, string) {
	t.Helper()
	tree := buildTree(t, 1, 96)
	path := filepath.Join(t.TempDir(), "t.tree")
	saveTree(t, tree, path)
	reg := NewRegistry(opts.Obs)
	if err := reg.Load("t", path); err != nil {
		t.Fatal(err)
	}
	mux := http.NewServeMux()
	NewServer(reg, opts).RegisterMux(mux)
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv, reg, tree, path
}

// postJSON round-trips a request, failing on transport errors; the
// status and decoded body come back for assertion.
func postJSON(t *testing.T, url string, req any, resp any) int {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	httpResp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer httpResp.Body.Close()
	if resp != nil && httpResp.StatusCode/100 == 2 {
		if err := json.NewDecoder(httpResp.Body).Decode(resp); err != nil {
			t.Fatalf("decode %s response: %v", url, err)
		}
	}
	return httpResp.StatusCode
}

func TestDistBatchMatchesSerial(t *testing.T) {
	// The same 10k-pair batch must come back bit-identical to serial
	// hst.Tree.Dist at every worker count.
	for _, workers := range []int{1, 3, 8} {
		srv, _, tree, _ := newTestServer(t, Options{Workers: workers})
		pairs := workload.DistPairs(7, tree.NumPoints(), 10000)
		var resp DistResponse
		if code := postJSON(t, srv.URL+"/v1/dist", DistRequest{Tree: "t", Pairs: pairs}, &resp); code != 200 {
			t.Fatalf("workers=%d: HTTP %d", workers, code)
		}
		if len(resp.Dists) != len(pairs) {
			t.Fatalf("workers=%d: %d answers for %d pairs", workers, len(resp.Dists), len(pairs))
		}
		for i, p := range pairs {
			if want := tree.Dist(p[0], p[1]); resp.Dists[i] != want {
				t.Fatalf("workers=%d pair %d: %v != serial %v", workers, i, resp.Dists[i], want)
			}
		}
	}
}

func TestKNNEndpoint(t *testing.T) {
	srv, _, tree, _ := newTestServer(t, Options{})
	p := 3
	var resp KNNResponse
	if code := postJSON(t, srv.URL+"/v1/knn", KNNRequest{Tree: "t", Point: &p, K: 4}, &resp); code != 200 {
		t.Fatalf("HTTP %d", code)
	}
	want := tree.KNN(3, 4)
	if len(resp.Neighbors) != 1 || len(resp.Neighbors[0]) != len(want) {
		t.Fatalf("shape: %+v", resp)
	}
	for i := range want {
		if resp.Neighbors[0][i] != want[i] {
			t.Fatalf("neighbor %d = %+v, want %+v", i, resp.Neighbors[0][i], want[i])
		}
	}
	// Batch form.
	var batch KNNResponse
	if code := postJSON(t, srv.URL+"/v1/knn", KNNRequest{Tree: "t", Points: []int{0, 1, 2}, K: 2}, &batch); code != 200 {
		t.Fatalf("batch HTTP %d", code)
	}
	if len(batch.Neighbors) != 3 {
		t.Fatalf("batch shape: %+v", batch)
	}
}

func TestCutEMDMedoidEndpoints(t *testing.T) {
	srv, _, tree, _ := newTestServer(t, Options{})
	var cut CutResponse
	if code := postJSON(t, srv.URL+"/v1/cut", CutRequest{Tree: "t", Scale: 500}, &cut); code != 200 {
		t.Fatalf("cut HTTP %d", code)
	}
	if cut.Clusters < 1 || len(cut.Labels) != tree.NumPoints() || len(cut.Sizes) != cut.Clusters {
		t.Fatalf("cut shape: clusters=%d labels=%d sizes=%d", cut.Clusters, len(cut.Labels), len(cut.Sizes))
	}
	var emd EMDResponse
	if code := postJSON(t, srv.URL+"/v1/emd", EMDRequest{Tree: "t", Mu: "0:1,5:0.5", Nu: "9:1.5"}, &emd); code != 200 {
		t.Fatalf("emd HTTP %d", code)
	}
	mu, _ := ParseMeasure("0:1,5:0.5", tree.NumPoints())
	nu, _ := ParseMeasure("9:1.5", tree.NumPoints())
	if want := tree.EMD(mu, nu); emd.EMD != want {
		t.Fatalf("emd = %v, want %v", emd.EMD, want)
	}
	var med MedoidResponse
	if code := postJSON(t, srv.URL+"/v1/medoid", MedoidRequest{Tree: "t"}, &med); code != 200 {
		t.Fatalf("medoid HTTP %d", code)
	}
	if wantP, wantD := tree.MedoidLeaf(); med.Point != wantP || med.TotalDist != wantD {
		t.Fatalf("medoid = %+v, want (%d, %v)", med, wantP, wantD)
	}
}

func TestValidationErrors(t *testing.T) {
	srv, _, tree, _ := newTestServer(t, Options{MaxBatch: 100})
	n := tree.NumPoints()
	cases := []struct {
		name string
		url  string
		req  any
		want int
	}{
		{"unknown tree", "/v1/dist", DistRequest{Tree: "nope", Pairs: [][2]int{{0, 1}}}, 404},
		{"missing tree", "/v1/dist", DistRequest{Pairs: [][2]int{{0, 1}}}, 400},
		{"empty pairs", "/v1/dist", DistRequest{Tree: "t"}, 400},
		{"pair out of range", "/v1/dist", DistRequest{Tree: "t", Pairs: [][2]int{{0, n}}}, 400},
		{"negative pair", "/v1/dist", DistRequest{Tree: "t", Pairs: [][2]int{{-1, 0}}}, 400},
		{"batch too large", "/v1/dist", DistRequest{Tree: "t", Pairs: make([][2]int, 101)}, 400},
		{"knn k zero", "/v1/knn", KNNRequest{Tree: "t", Points: []int{0}, K: 0}, 400},
		{"knn no points", "/v1/knn", KNNRequest{Tree: "t", K: 3}, 400},
		{"knn point range", "/v1/knn", KNNRequest{Tree: "t", Points: []int{n}, K: 3}, 400},
		{"cut zero scale", "/v1/cut", CutRequest{Tree: "t", Scale: 0}, 400},
		{"cut negative scale", "/v1/cut", CutRequest{Tree: "t", Scale: -4}, 400},
		{"emd NaN mass", "/v1/emd", EMDRequest{Tree: "t", Mu: "0:NaN", Nu: "1:1"}, 400},
		{"emd Inf mass", "/v1/emd", EMDRequest{Tree: "t", Mu: "0:1", Nu: "1:Inf"}, 400},
		{"emd empty measure", "/v1/emd", EMDRequest{Tree: "t", Mu: "", Nu: "1:1"}, 400},
		{"reload unknown", "/v1/trees/reload", ReloadRequest{Tree: "nope"}, 400},
	}
	for _, c := range cases {
		if code := postJSON(t, srv.URL+c.url, c.req, nil); code != c.want {
			t.Errorf("%s: HTTP %d, want %d", c.name, code, c.want)
		}
	}
	// NaN scale can't travel through JSON as a number; a raw body checks
	// the decoder rejects it rather than silently zeroing.
	resp, err := http.Post(srv.URL+"/v1/cut", "application/json", strings.NewReader(`{"tree":"t","scale":NaN}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Errorf("NaN scale: HTTP %d, want 400", resp.StatusCode)
	}
	// Wrong method.
	getResp, err := http.Get(srv.URL + "/v1/dist")
	if err != nil {
		t.Fatal(err)
	}
	getResp.Body.Close()
	if getResp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/dist: HTTP %d, want 405", getResp.StatusCode)
	}
}

func TestBodySizeLimit(t *testing.T) {
	srv, _, _, _ := newTestServer(t, Options{MaxBodyBytes: 256})
	big := DistRequest{Tree: "t", Pairs: make([][2]int, 1000)}
	if code := postJSON(t, srv.URL+"/v1/dist", big, nil); code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: HTTP %d, want 413", code)
	}
}

func TestDeadline(t *testing.T) {
	srv, _, _, _ := newTestServer(t, Options{Deadline: time.Nanosecond})
	if code := postJSON(t, srv.URL+"/v1/medoid", MedoidRequest{Tree: "t"}, nil); code != http.StatusServiceUnavailable {
		t.Fatalf("expired deadline: HTTP %d, want 503", code)
	}
}

// TestDeadlineReachesBatchFanOut pins the request context propagating
// into the parallel batch path: an already-expired deadline must abort
// the /v1/dist fan-out with 503 rather than computing a doomed batch.
func TestDeadlineReachesBatchFanOut(t *testing.T) {
	srv, _, tree, _ := newTestServer(t, Options{Deadline: time.Nanosecond, Workers: 4})
	pairs := workload.DistPairs(3, tree.NumPoints(), 5000)
	if code := postJSON(t, srv.URL+"/v1/dist", DistRequest{Tree: "t", Pairs: pairs}, nil); code != http.StatusServiceUnavailable {
		t.Fatalf("expired deadline on dist batch: HTTP %d, want 503", code)
	}
	if code := postJSON(t, srv.URL+"/v1/knn", KNNRequest{Tree: "t", Points: []int{0, 1, 2, 3}, K: 3}, nil); code != http.StatusServiceUnavailable {
		t.Fatalf("expired deadline on knn batch: HTTP %d, want 503", code)
	}
}

func TestTreesListAndReload(t *testing.T) {
	srv, reg, tree, path := newTestServer(t, Options{})
	httpResp, err := http.Get(srv.URL + "/v1/trees")
	if err != nil {
		t.Fatal(err)
	}
	var list TreesResponse
	if err := json.NewDecoder(httpResp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	httpResp.Body.Close()
	if len(list.Trees) != 1 || list.Trees[0].Name != "t" || list.Trees[0].Points != tree.NumPoints() || list.Trees[0].Generation != 1 {
		t.Fatalf("list: %+v", list)
	}
	// Swap the file for a different tree and hot-reload.
	tree2 := buildTree(t, 99, 64)
	saveTree(t, tree2, path)
	var rel ReloadResponse
	if code := postJSON(t, srv.URL+"/v1/trees/reload", ReloadRequest{Tree: "t"}, &rel); code != 200 {
		t.Fatalf("reload HTTP %d", code)
	}
	if rel.Tree.Points != tree2.NumPoints() || rel.Tree.Generation != 2 {
		t.Fatalf("post-reload info: %+v", rel.Tree)
	}
	got, err := reg.Get("t")
	if err != nil {
		t.Fatal(err)
	}
	if got.NumPoints() != tree2.NumPoints() {
		t.Fatalf("registry still serves the old tree")
	}
}

// A failed reload (corrupt file on disk) must keep the previous tree in
// service — hot reload can degrade to "no change", never to an outage.
func TestReloadFailureKeepsServing(t *testing.T) {
	srv, reg, tree, path := newTestServer(t, Options{})
	if err := os.WriteFile(path, []byte("corrupt garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := postJSON(t, srv.URL+"/v1/trees/reload", ReloadRequest{Tree: "t"}, nil); code != 400 {
		t.Fatalf("corrupt reload: HTTP %d, want 400", code)
	}
	got, err := reg.Get("t")
	if err != nil {
		t.Fatal(err)
	}
	if got.NumPoints() != tree.NumPoints() {
		t.Fatal("old tree gone after failed reload")
	}
	var resp DistResponse
	if code := postJSON(t, srv.URL+"/v1/dist", DistRequest{Tree: "t", Pairs: [][2]int{{0, 1}}}, &resp); code != 200 {
		t.Fatalf("query after failed reload: HTTP %d", code)
	}
}

// The tentpole guarantee: hot reloads under sustained concurrent load
// drop no in-flight request, and every response is internally
// consistent with exactly one tree snapshot (old or new), never a torn
// mix.
func TestHotReloadUnderLoad(t *testing.T) {
	srv, _, treeA, path := newTestServer(t, Options{})
	treeB := buildTree(t, 42, 96) // same point count, different metric
	pairs := workload.DistPairs(11, treeA.NumPoints(), 64)
	wantA := make([]float64, len(pairs))
	wantB := make([]float64, len(pairs))
	differs := false
	for i, p := range pairs {
		wantA[i] = treeA.Dist(p[0], p[1])
		wantB[i] = treeB.Dist(p[0], p[1])
		if wantA[i] != wantB[i] {
			differs = true
		}
	}
	if !differs {
		t.Fatal("test trees answer identically; reload would be unobservable")
	}

	const clients = 6
	const perClient = 60
	var wg sync.WaitGroup
	errs := make(chan error, clients*perClient)
	stop := make(chan struct{})
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				var resp DistResponse
				body, _ := json.Marshal(DistRequest{Tree: "t", Pairs: pairs})
				httpResp, err := http.Post(srv.URL+"/v1/dist", "application/json", bytes.NewReader(body))
				if err != nil {
					errs <- err
					return
				}
				code := httpResp.StatusCode
				err = json.NewDecoder(httpResp.Body).Decode(&resp)
				httpResp.Body.Close()
				if code != 200 || err != nil {
					errs <- fmt.Errorf("HTTP %d, decode err %v", code, err)
					return
				}
				matchA, matchB := true, true
				for j := range pairs {
					if resp.Dists[j] != wantA[j] {
						matchA = false
					}
					if resp.Dists[j] != wantB[j] {
						matchB = false
					}
				}
				if !matchA && !matchB {
					errs <- fmt.Errorf("torn response: matches neither tree snapshot")
					return
				}
			}
		}()
	}
	// Flip the served tree back and forth while the clients hammer.
	var reloadWg sync.WaitGroup
	reloadWg.Add(1)
	go func() {
		defer reloadWg.Done()
		cur := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			var tr *hst.Tree
			if cur%2 == 0 {
				tr = treeB
			} else {
				tr = treeA
			}
			cur++
			saveTree(t, tr, path)
			if code := postJSON(t, srv.URL+"/v1/trees/reload", ReloadRequest{Tree: "t"}, nil); code != 200 {
				errs <- fmt.Errorf("reload HTTP %d", code)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()
	wg.Wait()
	close(stop)
	reloadWg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// Metrics: traffic must surface as valid Prometheus series with
// per-endpoint counters and latency histograms.
func TestServeMetrics(t *testing.T) {
	reg := obs.New()
	srv, _, _, _ := newTestServer(t, Options{Obs: reg})
	for i := 0; i < 3; i++ {
		postJSON(t, srv.URL+"/v1/dist", DistRequest{Tree: "t", Pairs: [][2]int{{0, 1}}}, nil)
	}
	postJSON(t, srv.URL+"/v1/cut", CutRequest{Tree: "t", Scale: -1}, nil) // a 4xx
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	if _, err := obs.ValidatePrometheus(text); err != nil {
		t.Fatalf("metrics do not validate: %v\n%s", err, text)
	}
	for _, want := range []string{
		`serve_requests_total{endpoint="dist"} 3`,
		`serve_errors_total{class="4xx",endpoint="cut"} 1`,
		`serve_request_seconds_bucket{le="+Inf",endpoint="dist"} 3`,
		`serve_trees_loaded 1`,
		`serve_tree_points{tree="t"}`,
		`serve_inflight_requests 0`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q\n%s", want, text)
		}
	}
}

// The ISSUE acceptance run, in-suite: >= 4 concurrent clients, >= 10k
// total queries, hot reloads mixed in, zero errors, and every dist/knn
// answer verified bit-identical against the serial tree.
func TestRunLoadAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("load run in -short mode")
	}
	srv, reg, _, _ := newTestServer(t, Options{})
	tree, err := reg.Get("t")
	if err != nil {
		t.Fatal(err)
	}
	report := RunLoad(srv.URL, "t", tree.NumPoints(), LoadOptions{
		Clients:     4,
		Queries:     1200, // x batch 16 in the default mix -> >= 10k query items
		Batch:       16,
		Seed:        7,
		ReloadEvery: 50,
		Verify:      tree,
	})
	t.Logf("load report: %s", report)
	if report.Errors > 0 {
		t.Fatalf("%d errors (first: %s)", report.Errors, report.FirstErr)
	}
	if report.Requests != 1200 {
		t.Fatalf("issued %d requests, want 1200", report.Requests)
	}
	if report.Queries < 10000 {
		t.Fatalf("answered %d queries, want >= 10000", report.Queries)
	}
	if report.Reloads == 0 {
		t.Fatal("no hot reloads happened during the run")
	}
}

// Deterministic query streams: two RunLoad invocations with the same
// seed issue the same queries, so reports agree on everything but
// timing.
func TestRunLoadDeterministicStream(t *testing.T) {
	q1 := workload.Queries(3, 50, 200, 8, 1e6, workload.DefaultQueryMix())
	q2 := workload.Queries(3, 50, 200, 8, 1e6, workload.DefaultQueryMix())
	if len(q1) != len(q2) {
		t.Fatalf("lengths differ: %d vs %d", len(q1), len(q2))
	}
	for i := range q1 {
		a, _ := json.Marshal(q1[i])
		b, _ := json.Marshal(q2[i])
		if !bytes.Equal(a, b) {
			t.Fatalf("query %d differs:\n%s\n%s", i, a, b)
		}
	}
}
