// The load generator: drives sustained concurrent traffic at a running
// server over real HTTP and reports achieved QPS and latency quantiles.
// It is the acceptance harness for the serving layer (treeserve
// -selftest, the serve-smoke CI job, and the package's own tests):
// every response is checked — status, shape, and (when a verification
// tree is supplied) bit-identical agreement of batch distances with
// serial hst.Tree.Dist — and any mismatch is an error, not a statistic.
package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"mpctree/internal/hst"
	"mpctree/internal/workload"
)

// LoadOptions configures a load run.
type LoadOptions struct {
	Clients     int               // concurrent client goroutines; 0 = 4
	Queries     int               // total requests to issue across all clients; 0 = 10000
	Batch       int               // dist pairs per request; 0 = 16
	Seed        uint64            // query-stream seed; runs with equal seeds are identical
	Mix         workload.QueryMix // zero value = workload.DefaultQueryMix()
	MaxScale    float64           // cut-scale upper bound; 0 = 1e6
	ReloadEvery int               // every k-th request (per client) also POSTs a hot reload; 0 = never
	Verify      *hst.Tree         // when set, dist/knn answers are checked against it

	// Gate mode: when Ensemble is set, every EnsembleEvery-th dist
	// request (per client) is redirected at that ensemble name instead
	// of the plain tree; with VerifyEnsemble set, the answer must be
	// bit-identical to the serial elementwise min over those trees.
	Ensemble       string
	EnsembleEvery  int
	VerifyEnsemble []*hst.Tree
}

// LoadReport summarises a completed run.
type LoadReport struct {
	Requests int           // HTTP requests issued
	Queries  int           // individual queries answered (batch items)
	Errors   int           // non-2xx responses, transport errors, wrong answers
	Reloads  int           // hot reloads triggered mid-run
	Ensemble int           // ensemble-min queries issued (gate mode)
	Wall     time.Duration // fan-out wall time
	QPS      float64       // Queries / Wall
	P50, P99 time.Duration // request latency quantiles
	FirstErr string        // first error seen, for diagnostics
}

// String renders the report the way treeserve -selftest prints it.
func (r LoadReport) String() string {
	s := fmt.Sprintf("requests %d, queries %d, errors %d, reloads %d, wall %v, %.0f qps, p50 %v, p99 %v",
		r.Requests, r.Queries, r.Errors, r.Reloads, r.Wall.Round(time.Millisecond),
		r.QPS, r.P50.Round(time.Microsecond), r.P99.Round(time.Microsecond))
	if r.Ensemble > 0 {
		s += fmt.Sprintf(", ensemble %d", r.Ensemble)
	}
	return s
}

// RunLoad drives the query stream at baseURL against the named tree and
// collects a report. Work is split across Clients goroutines, each
// walking a disjoint strided slice of one deterministic query stream,
// so the set of queries issued is independent of scheduling; only the
// interleaving varies.
func RunLoad(baseURL, tree string, numPoints int, opts LoadOptions) LoadReport {
	clients := opts.Clients
	if clients <= 0 {
		clients = 4
	}
	total := opts.Queries
	if total <= 0 {
		total = 10000
	}
	batch := opts.Batch
	if batch <= 0 {
		batch = 16
	}
	mix := opts.Mix
	if mix == (workload.QueryMix{}) {
		mix = workload.DefaultQueryMix()
	}
	maxScale := opts.MaxScale
	if maxScale <= 0 {
		maxScale = 1e6
	}
	queries := workload.Queries(opts.Seed, numPoints, total, batch, maxScale, mix)

	var (
		nQueries  atomic.Int64
		nErrors   atomic.Int64
		nReloads  atomic.Int64
		nEnsemble atomic.Int64
		firstErr  atomic.Pointer[string]
	)
	recordErr := func(err error) {
		nErrors.Add(1)
		msg := err.Error()
		firstErr.CompareAndSwap(nil, &msg)
	}
	latencies := make([][]time.Duration, clients)
	client := &http.Client{Timeout: 60 * time.Second}

	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := c; i < len(queries); i += clients {
				q := queries[i]
				t0 := time.Now()
				var answered int
				var err error
				if opts.Ensemble != "" && opts.EnsembleEvery > 0 && q.Kind == workload.QueryDist &&
					(i/clients)%opts.EnsembleEvery == opts.EnsembleEvery-1 {
					answered, err = issueEnsembleDist(client, baseURL, opts.Ensemble, q, opts.VerifyEnsemble)
					nEnsemble.Add(1)
				} else {
					answered, err = issue(client, baseURL, tree, q, opts.Verify)
				}
				latencies[c] = append(latencies[c], time.Since(t0))
				if err != nil {
					recordErr(fmt.Errorf("%s query %d: %w", q.Kind, i, err))
				} else {
					nQueries.Add(int64(answered))
				}
				if opts.ReloadEvery > 0 && (i/clients)%opts.ReloadEvery == opts.ReloadEvery-1 {
					if err := post(client, baseURL+"/v1/trees/reload", ReloadRequest{Tree: tree}, &ReloadResponse{}); err != nil {
						recordErr(fmt.Errorf("hot reload: %w", err))
					} else {
						nReloads.Add(1)
					}
				}
			}
		}(c)
	}
	wg.Wait()
	wall := time.Since(start)

	var all []time.Duration
	for _, l := range latencies {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	quantile := func(q float64) time.Duration {
		if len(all) == 0 {
			return 0
		}
		i := int(q * float64(len(all)-1))
		return all[i]
	}
	report := LoadReport{
		Requests: len(all),
		Queries:  int(nQueries.Load()),
		Errors:   int(nErrors.Load()),
		Reloads:  int(nReloads.Load()),
		Ensemble: int(nEnsemble.Load()),
		Wall:     wall,
		P50:      quantile(0.50),
		P99:      quantile(0.99),
	}
	if wall > 0 {
		report.QPS = float64(report.Queries) / wall.Seconds()
	}
	if p := firstErr.Load(); p != nil {
		report.FirstErr = *p
	}
	return report
}

// post sends a JSON request and decodes a JSON response, treating any
// non-2xx status as an error carrying the server's error message.
func post(client *http.Client, url string, req, resp any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	httpResp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer httpResp.Body.Close()
	if httpResp.StatusCode/100 != 2 {
		var apiErr struct {
			Error string `json:"error"`
		}
		_ = json.NewDecoder(httpResp.Body).Decode(&apiErr)
		return fmt.Errorf("%s: HTTP %d: %s", url, httpResp.StatusCode, apiErr.Error)
	}
	return json.NewDecoder(httpResp.Body).Decode(resp)
}

// issueEnsembleDist sends one dist batch at an ensemble name and, when
// verify trees are supplied, checks the answer against the serial
// elementwise min over them — the gate's fan-out must be bit-identical
// to querying the member trees one by one.
func issueEnsembleDist(client *http.Client, baseURL, ensemble string, q workload.Query, verify []*hst.Tree) (int, error) {
	var resp DistResponse
	if err := post(client, baseURL+"/v1/dist", DistRequest{Tree: ensemble, Pairs: q.Pairs}, &resp); err != nil {
		return 0, err
	}
	if len(resp.Dists) != len(q.Pairs) {
		return 0, fmt.Errorf("ensemble dist: %d answers for %d pairs", len(resp.Dists), len(q.Pairs))
	}
	if len(verify) > 0 {
		for i, p := range q.Pairs {
			want := verify[0].Dist(p[0], p[1])
			for _, t := range verify[1:] {
				if d := t.Dist(p[0], p[1]); d < want {
					want = d
				}
			}
			if resp.Dists[i] != want {
				return 0, fmt.Errorf("ensemble dist(%d,%d) = %v, want min %v (not bit-identical)", p[0], p[1], resp.Dists[i], want)
			}
		}
	}
	return len(q.Pairs), nil
}

// issue sends one generated query and validates the response shape
// (and, with verify set, the answers). Returns the number of individual
// queries the request answered.
func issue(client *http.Client, baseURL, tree string, q workload.Query, verify *hst.Tree) (int, error) {
	switch q.Kind {
	case workload.QueryDist:
		var resp DistResponse
		if err := post(client, baseURL+"/v1/dist", DistRequest{Tree: tree, Pairs: q.Pairs}, &resp); err != nil {
			return 0, err
		}
		if len(resp.Dists) != len(q.Pairs) {
			return 0, fmt.Errorf("dist: %d answers for %d pairs", len(resp.Dists), len(q.Pairs))
		}
		if verify != nil {
			for i, p := range q.Pairs {
				if want := verify.Dist(p[0], p[1]); resp.Dists[i] != want {
					return 0, fmt.Errorf("dist(%d,%d) = %v, want %v (not bit-identical)", p[0], p[1], resp.Dists[i], want)
				}
			}
		}
		return len(q.Pairs), nil
	case workload.QueryKNN:
		var resp KNNResponse
		if err := post(client, baseURL+"/v1/knn", KNNRequest{Tree: tree, Points: q.Points, K: q.K}, &resp); err != nil {
			return 0, err
		}
		if len(resp.Neighbors) != len(q.Points) {
			return 0, fmt.Errorf("knn: %d answers for %d points", len(resp.Neighbors), len(q.Points))
		}
		if verify != nil {
			for i, p := range q.Points {
				want := verify.KNN(p, q.K)
				if len(resp.Neighbors[i]) != len(want) {
					return 0, fmt.Errorf("knn(%d): %d neighbors, want %d", p, len(resp.Neighbors[i]), len(want))
				}
				for j := range want {
					if resp.Neighbors[i][j] != want[j] {
						return 0, fmt.Errorf("knn(%d)[%d] = %+v, want %+v", p, j, resp.Neighbors[i][j], want[j])
					}
				}
			}
		}
		return len(q.Points), nil
	case workload.QueryCut:
		var resp CutResponse
		if err := post(client, baseURL+"/v1/cut", CutRequest{Tree: tree, Scale: q.Scale}, &resp); err != nil {
			return 0, err
		}
		if resp.Clusters < 1 || len(resp.Sizes) != resp.Clusters {
			return 0, fmt.Errorf("cut(%v): %d clusters, %d sizes", q.Scale, resp.Clusters, len(resp.Sizes))
		}
		return 1, nil
	case workload.QueryEMD:
		var resp EMDResponse
		if err := post(client, baseURL+"/v1/emd", EMDRequest{Tree: tree, Mu: q.Mu, Nu: q.Nu}, &resp); err != nil {
			return 0, err
		}
		if resp.EMD < 0 {
			return 0, fmt.Errorf("emd(%q,%q) = %v < 0", q.Mu, q.Nu, resp.EMD)
		}
		return 1, nil
	case workload.QueryMedoid:
		var resp MedoidResponse
		if err := post(client, baseURL+"/v1/medoid", MedoidRequest{Tree: tree}, &resp); err != nil {
			return 0, err
		}
		if resp.Point < 0 {
			return 0, fmt.Errorf("medoid point %d", resp.Point)
		}
		return 1, nil
	}
	return 0, fmt.Errorf("unknown query kind %v", q.Kind)
}
