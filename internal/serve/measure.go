// Package serve is the concurrent query-serving layer over saved tree
// embeddings: a registry of named trees with atomic hot-reload, an
// HTTP/JSON API for the tree-metric queries (batch distances, k-nearest
// neighbors, scale cuts, Earth-Mover distance, medoids), request
// batching fanned out through internal/par, and full wiring into the
// internal/obs metrics registry. This is the paper's "pay once for the
// MPC embedding, answer metric queries cheaply from the compact tree"
// workflow turned into a long-running service; cmd/treeserve is the
// binary.
package serve

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// ParseMeasure reads a sparse measure "idx:mass,idx:mass,..." over n
// points into a dense vector normalised to total mass 1. A bare "idx"
// means mass 1. It rejects out-of-range indices, negative masses, and —
// because strconv.ParseFloat happily accepts "NaN" and "Inf" — any
// non-finite mass, which would otherwise propagate silently into a
// NaN/Inf EMD. Both cmd/treequery and the /v1/emd endpoint parse
// through here, so the two front doors agree on what a measure is.
func ParseMeasure(s string, n int) ([]float64, error) {
	m := make([]float64, n)
	var total float64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		kv := strings.SplitN(part, ":", 2)
		idx, err := strconv.Atoi(strings.TrimSpace(kv[0]))
		if err != nil || idx < 0 || idx >= n {
			return nil, fmt.Errorf("bad measure entry %q (want idx in [0,%d))", part, n)
		}
		mass := 1.0
		if len(kv) == 2 {
			mass, err = strconv.ParseFloat(strings.TrimSpace(kv[1]), 64)
			if err != nil {
				return nil, fmt.Errorf("bad mass in %q", part)
			}
			if math.IsNaN(mass) || math.IsInf(mass, 0) {
				return nil, fmt.Errorf("non-finite mass in %q", part)
			}
			if mass < 0 {
				return nil, fmt.Errorf("negative mass in %q", part)
			}
		}
		m[idx] += mass
		total += mass
	}
	if total == 0 {
		return nil, fmt.Errorf("measure %q has no mass", s)
	}
	if math.IsInf(total, 0) {
		return nil, fmt.Errorf("measure %q has infinite total mass", s)
	}
	for i := range m {
		m[i] /= total
	}
	return m, nil
}
