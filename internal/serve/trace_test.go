package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"testing"
	"time"

	"mpctree/internal/obs"
)

// postTraced posts body with optional traceparent/request-id headers,
// returning status, response headers, and raw body bytes.
func postTraced(t *testing.T, url string, body []byte, hdrs map[string]string) (int, http.Header, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range hdrs {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, data
}

// TestTracedRequestSpanShape: a propagated sampled request yields one
// root span named after the endpoint with decode/registry_snapshot/
// compute/encode children, the parent_span metric naming the caller's
// span, and the root's span id echoed in X-Span-ID.
func TestTracedRequestSpanShape(t *testing.T) {
	tracer := obs.NewTracer(0, 64) // 0: only propagated traces sampled
	srv, _, _, _ := newTestServer(t, Options{Tracer: tracer})

	parent := obs.TraceContext{TraceID: obs.NewTraceID(), SpanID: obs.NewSpanID(), Sampled: true}
	body, _ := json.Marshal(DistRequest{Tree: "t", Pairs: [][2]int{{0, 1}, {2, 3}}})
	status, hdr, _ := postTraced(t, srv.URL+"/v1/dist", body,
		map[string]string{obs.TraceParentHeader: parent.HeaderValue()})
	if status != http.StatusOK {
		t.Fatalf("dist: %d", status)
	}
	echoed, ok := obs.ParseSpanID(hdr.Get(obs.SpanIDHeader))
	if !ok {
		t.Fatalf("X-Span-ID not echoed: %q", hdr.Get(obs.SpanIDHeader))
	}

	roots := tracer.Buffer().Snapshots()
	if len(roots) != 1 {
		t.Fatalf("buffer has %d roots, want 1", len(roots))
	}
	root := roots[0]
	if root.Name != "serve dist" || root.Running {
		t.Fatalf("root = %q running=%v", root.Name, root.Running)
	}
	if root.Metrics["parent_span"] != int64(parent.SpanID) {
		t.Fatalf("parent_span = %d, want %d", root.Metrics["parent_span"], parent.SpanID)
	}
	if root.Metrics["span_id"] != int64(echoed) {
		t.Fatalf("span_id metric %d != echoed %d", root.Metrics["span_id"], echoed)
	}
	if root.Metrics["status"] != http.StatusOK {
		t.Fatalf("status metric = %d", root.Metrics["status"])
	}
	want := map[string]bool{"decode": false, "registry_snapshot": false, "compute_dist": false, "encode": false}
	for _, c := range root.Children {
		if _, expected := want[c.Name]; !expected {
			t.Fatalf("unexpected child %q", c.Name)
		}
		want[c.Name] = true
		if c.Running {
			t.Fatalf("child %q still running", c.Name)
		}
	}
	for name, seen := range want {
		if !seen {
			t.Fatalf("missing child span %q", name)
		}
	}
	for _, c := range root.Children {
		if c.Name == "compute_dist" && c.Metrics["pairs"] != 2 {
			t.Fatalf("compute_dist pairs = %d, want 2", c.Metrics["pairs"])
		}
	}

	// An unsampled propagated request records nothing and echoes no span.
	parent.Sampled = false
	status, hdr, _ = postTraced(t, srv.URL+"/v1/dist", body,
		map[string]string{obs.TraceParentHeader: parent.HeaderValue()})
	if status != http.StatusOK {
		t.Fatalf("unsampled dist: %d", status)
	}
	if hdr.Get(obs.SpanIDHeader) != "" {
		t.Fatal("unsampled request echoed X-Span-ID")
	}
	if got := len(tracer.Buffer().Snapshots()); got != 1 {
		t.Fatalf("unsampled request recorded a root (buffer=%d)", got)
	}
}

// TestLocalHeadSampling: with no propagated context the replica's own
// sampler decides — fraction 1 records every request, fraction 0 none.
func TestLocalHeadSampling(t *testing.T) {
	always := obs.NewTracer(1, 64)
	srv, _, _, _ := newTestServer(t, Options{Tracer: always})
	body, _ := json.Marshal(MedoidRequest{Tree: "t"})
	for i := 0; i < 3; i++ {
		status, hdr, _ := postTraced(t, srv.URL+"/v1/medoid", body, nil)
		if status != http.StatusOK {
			t.Fatalf("medoid: %d", status)
		}
		if hdr.Get(obs.SpanIDHeader) == "" {
			t.Fatal("sampled request missing X-Span-ID")
		}
	}
	roots := always.Buffer().Snapshots()
	if len(roots) != 3 {
		t.Fatalf("recorded %d roots, want 3", len(roots))
	}
	for _, root := range roots {
		if root.Name != "serve medoid" || root.Metrics["parent_span"] != 0 {
			t.Fatalf("root %q parent_span=%d", root.Name, root.Metrics["parent_span"])
		}
	}
}

// TestTracingByteIdentity: the identical query stream against an
// untraced server, a 0%-sampled server, and a 100%-sampled server
// produces byte-identical response bodies — tracing is write-only.
func TestTracingByteIdentity(t *testing.T) {
	variants := []Options{
		{},
		{Tracer: obs.NewTracer(0, 64)},
		{Tracer: obs.NewTracer(1, 64), SLOTarget: time.Nanosecond,
			Obs: obs.New()}, // SLO burn + metering on: still write-only
	}
	queries := [][2]string{
		{"/v1/dist", `{"tree":"t","pairs":[[0,1],[5,9],[0,1]]}`},
		{"/v1/knn", `{"tree":"t","point":3,"k":4}`},
		{"/v1/cut", `{"tree":"t","scale":64}`},
		{"/v1/emd", `{"tree":"t","mu":"0:1","nu":"5:1"}`},
		{"/v1/medoid", `{"tree":"t"}`},
		{"/v1/dist", `{"tree":"t","pairs":[[2,7]]}`},
		{"/v1/dist", `{"tree":"missing","pairs":[[0,1]]}`}, // error path too
	}
	var streams [][]string
	for _, opts := range variants {
		srv, _, _, _ := newTestServer(t, opts)
		var out []string
		for _, q := range queries {
			status, _, body := postTraced(t, srv.URL+q[0], []byte(q[1]), nil)
			out = append(out, fmt.Sprintf("%d|%s", status, body))
		}
		streams = append(streams, out)
	}
	for v := 1; v < len(streams); v++ {
		for i := range queries {
			if streams[0][i] != streams[v][i] {
				t.Fatalf("variant %d diverges on %s %s:\nuntraced: %q\ntraced:   %q",
					v, queries[i][0], queries[i][1], streams[0][i], streams[v][i])
			}
		}
	}
}
