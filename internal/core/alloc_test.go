package core

import (
	"testing"

	"mpctree/internal/fjlt"
	"mpctree/internal/mpc"
)

// TestEmbedPipelineAllocCeiling pins the full pipeline's heap-object
// count for one fixed configuration — the third leg of the PR-7 alloc
// gate (DistFWHT and fjlt.ApplyAll have their own ceilings in their
// packages). The count includes cluster construction, the FJLT stage,
// and the embedding stage; before the arena work this configuration
// allocated on the order of u·r·levels + several objects per point per
// round (hundreds of thousands of objects), so the ceiling is set far
// below that regime while leaving headroom over the measured value for
// runtime incidentals and map-growth jitter.
func TestEmbedPipelineAllocCeiling(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc accounting under -short")
	}
	pts := latticePts(t, 1, 48, 300, 32) // d=300 ≫ k: the FJLT stage engages
	opt := PipelineOptions{Xi: 0.3, FJLT: fjlt.Options{CK: 1}, Seed: 3, Workers: 1}
	allocs := testing.AllocsPerRun(3, func() {
		c := mpc.New(mpc.Config{Machines: 4, CapWords: 1 << 22})
		if _, _, err := EmbedPipeline(c, pts, opt); err != nil {
			t.Fatal(err)
		}
	})
	// Measured ~10.2k objects per run (48 points, d=300, 4 machines).
	const ceiling = 16000
	if allocs > ceiling {
		t.Fatalf("EmbedPipeline allocates %.0f objects per run, ceiling %d", allocs, ceiling)
	}
	t.Logf("EmbedPipeline allocs/run = %.0f (ceiling %d)", allocs, ceiling)
}
