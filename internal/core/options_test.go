package core

import (
	"testing"

	"mpctree/internal/rng"
	"mpctree/internal/vec"
)

// Real-valued, negative-coordinate inputs (the post-FJLT regime) must
// embed correctly when MinDist is supplied: grids are shift-invariant,
// nothing assumes the positive orthant.
func TestEmbedNegativeRealCoordinates(t *testing.T) {
	r := rng.New(51)
	pts := make([]vec.Point, 60)
	for i := range pts {
		p := make(vec.Point, 4)
		for j := range p {
			p[j] = r.UniformRange(-500, 500)
		}
		pts[i] = p
	}
	pts = vec.Dedup(pts)
	tr, _, err := Embed(pts, Options{Method: MethodHybrid, R: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(pts); i++ {
		for j := i + 1; j < len(pts); j++ {
			if tr.Dist(i, j) < vec.Dist(pts[i], pts[j])-1e-9 {
				t.Fatal("domination violated on negative coordinates")
			}
		}
	}
}

func TestEmbedDiameterOverride(t *testing.T) {
	pts := latticePts(t, 52, 40, 3, 64)
	// A larger-than-true diameter just adds coarse levels; the embedding
	// must still be valid and dominating.
	tr, info, err := Embed(pts, Options{Method: MethodHybrid, R: 1, Seed: 6, Diameter: 10000})
	if err != nil {
		t.Fatal(err)
	}
	if info.TopScale != 10000 {
		t.Errorf("TopScale = %v", info.TopScale)
	}
	for i := 0; i < len(pts); i++ {
		for j := i + 1; j < len(pts); j++ {
			if tr.Dist(i, j) < vec.Dist(pts[i], pts[j])-1e-9 {
				t.Fatal("domination violated with diameter override")
			}
		}
	}
}

func TestEmbedMinDistOverride(t *testing.T) {
	pts := latticePts(t, 53, 40, 3, 64)
	// Claiming a larger min distance prunes deep levels. Domination can
	// then fail for the very closest pairs IF the claim is false; with a
	// truthful claim (1, the lattice spacing) all is well and the level
	// count matches the auto-computed run.
	a, ia, err := Embed(pts, Options{Method: MethodHybrid, R: 1, Seed: 7, MinDist: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, ib, err := Embed(pts, Options{Method: MethodHybrid, R: 1, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if ia.Levels > ib.Levels {
		t.Errorf("claimed MinDist=1 gave MORE levels (%d) than exact (%d)", ia.Levels, ib.Levels)
	}
	_ = a
	_ = b
}

func TestEmbedMaxLevelsCap(t *testing.T) {
	pts := latticePts(t, 54, 30, 3, 4096)
	_, info, err := Embed(pts, Options{Method: MethodGrid, Seed: 8, MaxLevels: 3})
	if err != nil {
		t.Fatal(err)
	}
	if info.Levels > 3 {
		t.Errorf("levels %d exceed cap 3", info.Levels)
	}
}

func TestEmbedBallIgnoresR(t *testing.T) {
	pts := latticePts(t, 55, 30, 4, 64)
	_, info, err := Embed(pts, Options{Method: MethodBall, R: 4, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if info.R != 1 {
		t.Errorf("ball method used r=%d", info.R)
	}
}

func TestEmbedCustomFailProb(t *testing.T) {
	pts := latticePts(t, 56, 40, 4, 64)
	// A large δ shrinks the Lemma-7 cap; the run either succeeds or
	// reports coverage failure — never silently mis-partitions.
	tr, _, err := Embed(pts, Options{Method: MethodHybrid, R: 2, Seed: 10, FailProb: 0.4})
	if err != nil {
		t.Logf("large-δ run reported: %v", err)
		return
	}
	for i := 0; i < len(pts); i++ {
		for j := i + 1; j < len(pts); j++ {
			if tr.Dist(i, j) < vec.Dist(pts[i], pts[j])-1e-9 {
				t.Fatal("domination violated")
			}
		}
	}
}

// Two distinct points only — the smallest non-trivial embedding.
func TestEmbedTwoPoints(t *testing.T) {
	pts := []vec.Point{{1, 1}, {60, 60}}
	for _, m := range []Method{MethodHybrid, MethodGrid, MethodBall} {
		tr, _, err := Embed(pts, Options{Method: m, Seed: 11})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if tr.Dist(0, 1) < vec.Dist(pts[0], pts[1]) {
			t.Fatalf("%v: domination violated for the pair", m)
		}
	}
}

// Collinear points on one axis exercise the degenerate bounding box
// (zero extent in most dimensions).
func TestEmbedCollinear(t *testing.T) {
	var pts []vec.Point
	for i := 0; i < 20; i++ {
		pts = append(pts, vec.Point{float64(1 + i*7), 5, 5})
	}
	tr, _, err := Embed(pts, Options{Method: MethodHybrid, R: 3, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(pts); i++ {
		for j := i + 1; j < len(pts); j++ {
			if tr.Dist(i, j) < vec.Dist(pts[i], pts[j])-1e-9 {
				t.Fatal("domination violated on collinear data")
			}
		}
	}
}
