package core

import (
	"bytes"
	"testing"

	"mpctree/internal/fjlt"
	"mpctree/internal/mpc"
	"mpctree/internal/obs"
	"mpctree/internal/quality"
	"mpctree/internal/workload"
)

// The quality layer's hard constraint: auditing observes an embedding,
// it never participates in one. A run with a collector attached must
// produce a tree byte-identical to the bare run — the auditor draws its
// pair sample from its own seed and only ever reads the tree — at any
// worker count.
func TestQualityAuditingPreservesSequentialDeterminism(t *testing.T) {
	pts := workload.UniformLattice(21, 96, 8, 1024)
	opt := Options{Seed: 5}

	bare, _, err := Embed(pts, opt)
	if err != nil {
		t.Fatal(err)
	}
	var bareBytes bytes.Buffer
	if _, err := bare.WriteTo(&bareBytes); err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 8} {
		reg := obs.New()
		qopt := opt
		qopt.Workers = workers
		qopt.Quality = quality.NewCollector(reg, quality.Config{MaxPairs: 400, Seed: 77, Workers: workers})
		audited, _, err := Embed(pts, qopt)
		if err != nil {
			t.Fatal(err)
		}
		var auditedBytes bytes.Buffer
		if _, err := audited.WriteTo(&auditedBytes); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(bareBytes.Bytes(), auditedBytes.Bytes()) {
			t.Fatalf("workers=%d: audited run's tree differs from bare run", workers)
		}
		// The in-loop instrumentation must actually have observed levels.
		var seps float64
		for _, v := range reg.Snapshot() {
			if v.Name == "quality_separation_events_total" {
				seps += v.Value
			}
		}
		if seps == 0 {
			t.Fatal("no separation events recorded — collector was not wired into the level loop")
		}
	}
}

// Same constraint for the full Theorem-1 pipeline: the audit runs after
// ScaleWeights against the original points and must not perturb the
// tree. The published report must exist and carry a Thm2Bound-derived
// alarm threshold when none was configured.
func TestQualityAuditingPreservesPipelineDeterminism(t *testing.T) {
	pts := workload.UniformLattice(22, 48, 120, 512)
	opt := PipelineOptions{Xi: 0.3, FJLT: fjlt.Options{CK: 1}, Seed: 7}

	bare, _ := runPipeline(t, pts, opt, false, nil)

	reg := obs.New()
	col := quality.NewCollector(reg, quality.Config{MaxPairs: 300, Seed: 99})
	qopt := opt
	qopt.Quality = col
	audited, _ := runPipeline(t, pts, qopt, false, nil)

	if !bytes.Equal(bare, audited) {
		t.Fatal("audited pipeline run's tree differs from bare run")
	}
	rep := col.Last()
	if rep == nil {
		t.Fatal("pipeline did not publish an audit report")
	}
	if rep.MaxMeanRatio <= 0 {
		t.Fatalf("audit alarm threshold not defaulted from Thm2Bound: %v", rep.MaxMeanRatio)
	}
	if rep.SampledPairs == 0 {
		t.Fatal("audit measured no pairs")
	}
	// The pipeline rescales by 1/(1−ξ) exactly so domination holds for
	// the original metric w.h.p.; at this size it should hold outright.
	if rep.DominationViolations > rep.SampledPairs/10 {
		t.Fatalf("%d/%d domination violations after rescale", rep.DominationViolations, rep.SampledPairs)
	}
}

// The MPC embedding stage observes tree-derived level stats; a resilient
// chaos run with a collector attached must still reproduce the
// fault-free tree bit-for-bit.
func TestQualityAuditingPreservesChaosRecovery(t *testing.T) {
	pts := workload.UniformLattice(23, 32, 120, 512)
	opt := PipelineOptions{
		Xi: 0.3, FJLT: fjlt.Options{CK: 1}, Seed: 9,
		Resilient: true,
	}
	bare, _ := runPipeline(t, pts, opt, false, nil)

	reg := obs.New()
	qopt := opt
	qopt.Quality = quality.NewCollector(reg, quality.Config{MaxPairs: 200, Seed: 1})
	c := mpc.New(mpc.Config{Machines: 4, CapWords: 1 << 22})
	c.InjectFaults(mpc.UniformFaults(0xC4A05, 0.03))
	tree, info, err := EmbedPipeline(c, pts, qopt)
	if err != nil {
		t.Fatalf("chaos pipeline: %v", err)
	}
	if info.Faults.Injected() == 0 {
		t.Fatal("no faults injected — test asserts nothing")
	}
	var buf bytes.Buffer
	if _, err := tree.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bare, buf.Bytes()) {
		t.Fatal("audited chaos run's tree differs from bare fault-free run")
	}
}
