package core

import (
	"math"
	"testing"

	"mpctree/internal/rng"
	"mpctree/internal/vec"
)

func TestEmbedderTreeMatchesEmbed(t *testing.T) {
	pts := latticePts(t, 1, 80, 4, 128)
	opt := Options{Method: MethodHybrid, R: 2, Seed: 42}
	e, err := NewEmbedder(pts, opt)
	if err != nil {
		t.Fatal(err)
	}
	tr, _, err := Embed(pts, opt)
	if err != nil {
		t.Fatal(err)
	}
	// Identical seed and options ⇒ identical metric.
	for i := 0; i < len(pts); i++ {
		for j := i + 1; j < len(pts); j++ {
			if e.Tree().Dist(i, j) != tr.Dist(i, j) {
				t.Fatalf("Embedder and Embed disagree at (%d,%d)", i, j)
			}
		}
	}
}

// Locating an indexed point must land on (or above) its own leaf — and for
// the vast majority of points, exactly on it.
func TestEmbedderLocatesOwnPoints(t *testing.T) {
	pts := latticePts(t, 2, 100, 4, 128)
	e, err := NewEmbedder(pts, Options{Method: MethodHybrid, R: 2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	exact := 0
	for i, p := range pts {
		node, _ := e.Locate(p)
		// The located node's subtree must contain point i.
		found := false
		var walk func(v int)
		walk = func(v int) {
			if e.Tree().Nodes[v].Point == i {
				found = true
			}
			for _, c := range e.Tree().Nodes[v].Children {
				walk(c)
			}
		}
		walk(node)
		if !found {
			t.Fatalf("point %d located outside its own subtree (node %d)", i, node)
		}
		if e.Tree().Nodes[node].Point == i {
			exact++
		}
	}
	if exact < len(pts)*9/10 {
		t.Errorf("only %d/%d points located at their own leaf", exact, len(pts))
	}
}

// Refine on an indexed point returns the point itself at distance 0.
func TestEmbedderRefineSelf(t *testing.T) {
	pts := latticePts(t, 3, 60, 4, 128)
	e, err := NewEmbedder(pts, Options{Method: MethodHybrid, R: 2, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range pts {
		got, d := e.Refine(p)
		if got != i || d != 0 {
			t.Fatalf("Refine(pts[%d]) = (%d, %v)", i, got, d)
		}
	}
}

// Approximate NN quality: for queries near an indexed point, Refine must
// usually return something close — within a distortion-like factor of the
// true nearest neighbor.
func TestEmbedderNearQueries(t *testing.T) {
	pts := latticePts(t, 4, 150, 4, 1024)
	r := rng.New(9)
	okCount, trials := 0, 0
	const perTree = 40
	for seed := uint64(0); seed < 5; seed++ {
		e, err := NewEmbedder(pts, Options{Method: MethodHybrid, R: 2, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		for q := 0; q < perTree; q++ {
			base := pts[r.Intn(len(pts))]
			query := make(vec.Point, len(base))
			for j := range query {
				query[j] = base[j] + r.UniformRange(-0.4, 0.4)
			}
			_, gotD := e.Refine(query)
			// True nearest.
			trueD := math.Inf(1)
			for _, p := range pts {
				if d := vec.Dist(p, query); d < trueD {
					trueD = d
				}
			}
			trials++
			if gotD <= 64*trueD+1e-9 {
				okCount++
			}
		}
	}
	if okCount < trials*7/10 {
		t.Errorf("near-query NN within 64× of optimal only %d/%d times", okCount, trials)
	}
}

func TestEmbedderGridMethod(t *testing.T) {
	pts := latticePts(t, 5, 60, 3, 128)
	e, err := NewEmbedder(pts, Options{Method: MethodGrid, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range pts {
		if got, d := e.Refine(p); got != i || d != 0 {
			t.Fatalf("grid-method Refine(pts[%d]) = (%d, %v)", i, got, d)
		}
	}
}

func TestEmbedderBadInputs(t *testing.T) {
	if _, err := NewEmbedder(nil, Options{}); err == nil {
		t.Error("empty accepted")
	}
	if _, err := NewEmbedder([]vec.Point{{1, 1}, {1, 1}}, Options{}); err == nil {
		t.Error("duplicates accepted")
	}
	pts := latticePts(t, 6, 10, 4, 32)
	e, err := NewEmbedder(pts, Options{Method: MethodHybrid, R: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("wrong query dimension accepted")
		}
	}()
	e.Locate(vec.Point{1})
}

func TestEmbedderSinglePoint(t *testing.T) {
	e, err := NewEmbedder([]vec.Point{{5, 5}}, Options{Method: MethodHybrid, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if p, _ := e.NearestCandidate(vec.Point{7, 7}); p != 0 {
		t.Errorf("singleton candidate = %d", p)
	}
}

// Padding path: d=5 with r=2 pads queries too.
func TestEmbedderPaddedQueries(t *testing.T) {
	pts := latticePts(t, 7, 40, 5, 64)
	e, err := NewEmbedder(pts, Options{Method: MethodHybrid, R: 2, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range pts {
		if got, d := e.Refine(p); got != i || d != 0 {
			t.Fatalf("padded Refine(pts[%d]) = (%d, %v)", i, got, d)
		}
	}
}
