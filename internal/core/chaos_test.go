package core

import (
	"bytes"
	"errors"
	"testing"

	"mpctree/internal/hst"
	"mpctree/internal/mpc"
	"mpctree/internal/resilient"
	"mpctree/internal/vec"
)

func treeBytes(t testing.TB, tree *hst.Tree) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := tree.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func checkDomination(t *testing.T, tree *hst.Tree, pts []vec.Point) {
	t.Helper()
	violations := 0
	for i := 0; i < len(pts); i++ {
		for j := i + 1; j < len(pts); j++ {
			if tree.Dist(i, j) < vec.Dist(pts[i], pts[j])-1e-9 {
				violations++
			}
		}
	}
	if violations > 0 {
		t.Errorf("%d pairs violate domination", violations)
	}
}

// The headline chaos guarantee: under crashes, transient failures, message
// corruption, and memory pressure at ≥5% per round, the resilient pipeline
// still produces a tree — and when recovery succeeds without degradation,
// that tree is bit-identical to the fault-free run of the same seed.
func TestChaosPipelineBitIdentical(t *testing.T) {
	pts := latticePts(t, 1, 48, 300, 32) // engages the FJLT stage
	opts := pipelineOpts(3)
	opts.Resilient = true
	opts.Retry = resilient.Options{MaxRetries: 60, Seed: 99}

	baseTree, baseInfo, err := EmbedPipeline(pipelineCluster(), pts, opts)
	if err != nil {
		t.Fatalf("fault-free run failed: %v", err)
	}
	if !baseInfo.UsedFJLT {
		t.Fatal("FJLT did not engage; chaos test needs both stages live")
	}
	base := treeBytes(t, baseTree)

	chaos := func() (*hst.Tree, *PipelineInfo, error) {
		c := pipelineCluster()
		c.InjectFaults(&mpc.FaultPlan{
			Seed:      1234,
			Crash:     0.05,
			Transient: 0.05,
			Pressure:  0.05,
			Drop:      0.02,
			Duplicate: 0.02,
		})
		return EmbedPipeline(c, pts, opts)
	}

	tree, info, err := chaos()
	if err != nil {
		t.Fatalf("chaos run failed: %v (info %+v)", err, info)
	}
	if info.Faults.Injected() == 0 {
		t.Fatal("chaos run injected nothing — the test is vacuous")
	}
	if info.Degraded {
		t.Fatalf("chaos run degraded (reason %q); raise the retry budget", info.DegradedReason)
	}
	if info.Attempts <= 2 {
		t.Errorf("attempts = %d; expected retries under %d injected faults", info.Attempts, info.Faults.Injected())
	}
	if info.Recovery.Restores == 0 || info.Recovery.Checkpoints == 0 {
		t.Errorf("recovery never engaged: %+v", info.Recovery)
	}
	if !bytes.Equal(treeBytes(t, tree), base) {
		t.Error("recovered tree differs from fault-free tree for the same (seed, fault-seed)")
	}
	checkDomination(t, tree, pts)

	// And the chaos run itself is reproducible end to end.
	tree2, info2, err2 := chaos()
	if err2 != nil {
		t.Fatalf("chaos rerun failed: %v", err2)
	}
	if !bytes.Equal(treeBytes(t, tree2), base) {
		t.Error("chaos rerun diverged")
	}
	if info2.Faults != info.Faults || info2.Attempts != info.Attempts {
		t.Errorf("chaos accounting not reproducible: %+v vs %+v", info2.Faults, info.Faults)
	}
}

// When the FJLT stage exhausts its retry budget the pipeline degrades:
// it embeds the original, un-reduced points and reports how and why.
func TestChaosDegradedFallback(t *testing.T) {
	pts := latticePts(t, 2, 32, 300, 32)
	opts := pipelineOpts(5)
	opts.Resilient = true
	opts.Retry = resilient.Options{MaxRetries: 2, Seed: 42}

	c := pipelineCluster()
	// Exactly enough transient faults to burn all 3 FJLT attempts; the
	// embed stage then runs fault-free.
	c.InjectFaults(&mpc.FaultPlan{Seed: 7, Transient: 1, MaxFaults: 3})
	tree, info, err := EmbedPipeline(c, pts, opts)
	if err != nil {
		t.Fatalf("degraded pipeline failed outright: %v", err)
	}
	if !info.Degraded {
		t.Fatal("pipeline did not report degradation")
	}
	if info.DegradedReason == "" {
		t.Error("degradation reason missing")
	}
	if info.UsedFJLT {
		t.Error("UsedFJLT set on a degraded run")
	}
	if tree == nil {
		t.Fatal("no tree from degraded run")
	}
	// Degraded runs embed the original points with MinDist unadjusted and
	// no rescale — domination holds unconditionally, not just w.h.p.
	checkDomination(t, tree, pts)
}

// NoDegrade turns the same exhaustion into a hard error.
func TestChaosNoDegradeFailsHard(t *testing.T) {
	pts := latticePts(t, 2, 32, 300, 32)
	opts := pipelineOpts(5)
	opts.Resilient = true
	opts.NoDegrade = true
	opts.Retry = resilient.Options{MaxRetries: 2, Seed: 42}

	c := pipelineCluster()
	c.InjectFaults(&mpc.FaultPlan{Seed: 7, Transient: 1, MaxFaults: 3})
	_, info, err := EmbedPipeline(c, pts, opts)
	if !errors.Is(err, resilient.ErrExhausted) {
		t.Fatalf("err = %v, want ErrExhausted", err)
	}
	if info == nil || info.Degraded {
		t.Errorf("info wrong on hard failure: %+v", info)
	}
}

// A non-resilient pipeline on a faulty cluster fails with the injected
// error class — no silent partial results.
func TestChaosWithoutResilienceFailsLoudly(t *testing.T) {
	pts := latticePts(t, 3, 32, 300, 32)
	c := pipelineCluster()
	c.InjectFaults(&mpc.FaultPlan{Seed: 11, Transient: 1, MaxFaults: 1})
	_, _, err := EmbedPipeline(c, pts, pipelineOpts(9))
	if !errors.Is(err, mpc.ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected class", err)
	}
}

// Crash-only chaos at a higher rate, exercising store loss + restore on
// the embed stage as well.
func TestChaosCrashHeavy(t *testing.T) {
	pts := latticePts(t, 4, 40, 300, 32)
	opts := pipelineOpts(13)
	opts.Resilient = true
	opts.Retry = resilient.Options{MaxRetries: 80, Seed: 17}

	base, _, err := EmbedPipeline(pipelineCluster(), pts, opts)
	if err != nil {
		t.Fatal(err)
	}
	c := pipelineCluster()
	c.InjectFaults(&mpc.FaultPlan{Seed: 555, Crash: 0.2})
	tree, info, err := EmbedPipeline(c, pts, opts)
	if err != nil {
		t.Fatalf("crash-heavy run failed: %v (faults %+v)", err, info.Faults)
	}
	if info.Faults.Crashes == 0 {
		t.Fatal("no crashes injected at 20%")
	}
	if info.Degraded {
		t.Fatalf("degraded under crash chaos: %s", info.DegradedReason)
	}
	if !bytes.Equal(treeBytes(t, tree), treeBytes(t, base)) {
		t.Error("crash-recovered tree differs from fault-free tree")
	}
}
