package core

import (
	"bytes"
	"testing"

	"mpctree/internal/fjlt"
	"mpctree/internal/hst"
	"mpctree/internal/mpc"
	"mpctree/internal/obs"
	"mpctree/internal/par"
	"mpctree/internal/resilient"
	"mpctree/internal/vec"
	"mpctree/internal/workload"
)

// runPipeline executes the Theorem-1 pipeline on a fresh cluster and
// returns the serialized tree plus the cluster for metric inspection.
func runPipeline(t *testing.T, pts []vec.Point, opt PipelineOptions, instrument bool, reg *obs.Registry) ([]byte, *mpc.Cluster) {
	t.Helper()
	c := mpc.New(mpc.Config{Machines: 4, CapWords: 1 << 22})
	if instrument {
		c.Instrument(reg)
		c.EnableTrace()
	}
	tree, _, err := EmbedPipeline(c, pts, opt)
	if err != nil {
		t.Fatalf("pipeline: %v", err)
	}
	var buf bytes.Buffer
	if _, err := tree.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), c
}

// The hard determinism constraint of the observability layer: a fully
// instrumented run (registry + spans + round trace + par/resilient
// meters) must produce a tree byte-identical to the bare run, at any
// worker count. Instrumentation is write-only; timing never feeds back.
func TestObservabilityPreservesDeterminism(t *testing.T) {
	pts := workload.UniformLattice(42, 48, 120, 512)
	opt := PipelineOptions{Xi: 0.3, FJLT: fjlt.Options{CK: 1}, Seed: 7}

	bare, _ := runPipeline(t, pts, opt, false, nil)

	reg := obs.New()
	par.Instrument(reg)
	resilient.Instrument(reg)
	root := obs.NewSpan("test")
	iopt := opt
	iopt.Span = root
	instrumented, c := runPipeline(t, pts, iopt, true, reg)
	root.End()

	if !bytes.Equal(bare, instrumented) {
		t.Fatal("instrumented run's tree differs from uninstrumented run")
	}

	// Worker-count invariance must survive with observability on.
	for _, workers := range []int{1, 8} {
		wopt := iopt
		wopt.Workers = workers
		wspan := obs.NewSpan("test-workers")
		wopt.Span = wspan
		got, _ := runPipeline(t, pts, wopt, true, reg)
		wspan.End()
		if !bytes.Equal(bare, got) {
			t.Fatalf("workers=%d with observability on: tree differs", workers)
		}
	}

	// Phase attribution must be exact on a fault-free run: the rounds and
	// comm words summed over leaf spans equal the cluster's totals.
	m := c.Metrics()
	sn := root.Snapshot()
	if got := sn.SumMetric("rounds"); got != int64(m.Rounds) {
		t.Errorf("span leaf-sum rounds = %d, cluster says %d\n%s", got, m.Rounds, root.RenderString())
	}
	if got := sn.SumMetric("comm_words"); got != int64(m.CommWords) {
		t.Errorf("span leaf-sum comm_words = %d, cluster says %d\n%s", got, m.CommWords, root.RenderString())
	}

	// And the registry's monotone counters agree with the model on a
	// fault-free single-cluster run... except the two extra worker runs
	// above shared reg, so check only the exported round trace bridge:
	// per-round send volumes from the trace sum to the cluster total.
	var traceSum int
	for _, st := range c.Trace() {
		traceSum += st.SentWords
	}
	if traceSum != m.CommWords {
		t.Errorf("round-trace send sum %d != cluster comm words %d", traceSum, m.CommWords)
	}
}

// A resilient chaos run with full observability attached must still
// produce the fault-free tree (PR 1's bit-identity promise, now with
// instrumentation in the loop).
func TestObservabilityPreservesChaosRecovery(t *testing.T) {
	pts := workload.UniformLattice(43, 32, 120, 512)
	opt := PipelineOptions{
		Xi: 0.3, FJLT: fjlt.Options{CK: 1}, Seed: 9,
		Resilient: true,
		Retry:     resilient.Options{MaxRetries: 60, Seed: 10},
	}
	bare, _ := runPipeline(t, pts, opt, false, nil)

	reg := obs.New()
	par.Instrument(reg)
	resilient.Instrument(reg)
	root := obs.NewSpan("chaos")
	iopt := opt
	iopt.Span = root
	c := mpc.New(mpc.Config{Machines: 4, CapWords: 1 << 22})
	c.Instrument(reg)
	c.InjectFaults(mpc.UniformFaults(0xC4A05, 0.05))
	tree, info, err := EmbedPipeline(c, pts, iopt)
	root.End()
	if err != nil {
		t.Fatalf("chaos pipeline: %v", err)
	}
	if info.Faults.Injected() == 0 {
		t.Fatal("no faults injected — test asserts nothing")
	}
	var buf bytes.Buffer
	if _, err := tree.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bare, buf.Bytes()) {
		t.Fatal("instrumented chaos run's tree differs from bare fault-free run")
	}
	if _, err := hst.ReadTree(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("recovered tree does not round-trip: %v", err)
	}
}
