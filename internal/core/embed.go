// Package core implements the paper's sequential tree-embedding algorithms:
// Algorithm 1 (hierarchical hybrid partitioning, Theorem 2) and the two
// methods it generalises — Arora's random shifted grid hierarchy and
// Charikar et al.'s ball-partitioning hierarchy — under one level-schedule
// framework, so that the distortion experiments compare exactly like with
// like.
//
// The hierarchy is built top-down. Level i partitions space at scale
// w_i = Δ/2^i (Δ = the point-set diameter); a cluster of the hierarchy at
// level i is identified by the chain of its flat-partition identifiers
// through levels 1..i, which is precisely the path(p) encoding of
// Algorithm 2. Edges from level i−1 to level i carry weight proportional
// to √r·w_i (the Lemma 1 cluster-diameter bound), which yields the
// domination property dist_T ≥ ‖p−q‖₂ deterministically.
package core

import (
	"errors"
	"fmt"
	"math"

	"mpctree/internal/grid"
	"mpctree/internal/hst"
	"mpctree/internal/par"
	"mpctree/internal/partition"
	"mpctree/internal/quality"
	"mpctree/internal/rng"
	"mpctree/internal/vec"
)

// Method selects the flat partitioning used at every level.
type Method int

const (
	// MethodHybrid is Algorithm 1: r-bucket hybrid partitioning.
	MethodHybrid Method = iota
	// MethodGrid is Arora's random shifted grid (Definition 1).
	MethodGrid
	// MethodBall is ball partitioning (Definition 2) = hybrid with r=1.
	MethodBall
)

func (m Method) String() string {
	switch m {
	case MethodHybrid:
		return "hybrid"
	case MethodGrid:
		return "grid"
	case MethodBall:
		return "ball"
	}
	return fmt.Sprintf("method(%d)", int(m))
}

// Options configures an embedding run. The zero value plus a Seed is a
// sensible hybrid-method default.
type Options struct {
	Method Method

	// R is the number of dimension buckets for MethodHybrid. 0 selects
	// the paper's r = Θ(log log n) (Section 4). Ignored by other methods.
	R int

	// MaxGrids caps the ball-partitioning grid draws per (level, bucket).
	// 0 selects the Lemma 7 bound for failure probability FailProb.
	MaxGrids int

	// FailProb is the per-run coverage failure probability δ used to size
	// MaxGrids when MaxGrids is 0. 0 defaults to 1/n².
	FailProb float64

	// Diameter overrides the top scale (the point-set diameter). 0
	// computes the bounding-box diameter from the data.
	Diameter float64

	// MinDist overrides the smallest pairwise distance used to size the
	// level count. 0 computes it exactly in O(n²) — fine for experiment
	// scales; callers with known lattices should pass 1.
	MinDist float64

	// MaxLevels caps the hierarchy depth as a safety bound. 0 means 64.
	MaxLevels int

	// Seed drives all randomness. Runs with equal options and seed are
	// bit-identical.
	Seed uint64

	// Workers bounds the data-parallel fan-out of the per-point scans
	// (diameter, min-distance, ball coverage checks; par.Workers semantics:
	// ≤ 0 means GOMAXPROCS, 1 is serial). Grids are still drawn serially
	// from the seeded RNG, so the tree is bit-identical for any value.
	Workers int

	// Quality, if non-nil, receives the per-level Lemma-1 observables
	// (separation events, same-part diameters) for the collector's seeded
	// pair sample, measured against each level's flat partition as it is
	// built. Observational only: the pair sample draws from the
	// collector's own seed, never from the embedding RNG, so the tree is
	// bit-identical with or without it.
	Quality *quality.Collector
}

// Info reports what an embedding run did — the quantities the paper's
// space analysis (Lemma 8) is about.
type Info struct {
	Method        Method
	N             int     // points embedded
	Dim           int     // dimension after padding
	R             int     // buckets used
	Levels        int     // hierarchy levels (excluding the root)
	TopScale      float64 // w_1·2 = diameter used
	GridsPerLevel []int   // total grid draws summed over buckets, per level
	GridWords     int     // words of grid descriptors stored (local memory proxy)
	MaxGridsCap   int     // the per-(level,bucket) cap applied
}

// ErrCoverageFailure is returned when ball partitioning exhausts its grid
// budget with uncovered points, the failure mode Theorem 1 requires to be
// reported rather than papered over.
var ErrCoverageFailure = errors.New("core: ball partitioning failed to cover all points within the grid budget")

// ErrInfeasible is returned up front when the Lemma-7 grid count for the
// chosen (d, r) exceeds any practical budget — the 2^Θ((d/r)·log(d/r))
// blow-up that makes plain ball partitioning unusable and motivates
// hybridisation. Increase r to proceed.
var ErrInfeasible = errors.New("core: required grid count is astronomically large; increase r (hybridise)")

// maxPracticalGrids caps the per-(level,bucket) grid budget Embed will
// attempt when sizing automatically; beyond it the run would take
// effectively forever and is rejected with ErrInfeasible.
const maxPracticalGrids = 1 << 20

// autoR returns the paper's bucket count r = Θ(log log n), at least 1.
func autoR(n, d int) int {
	if n < 4 {
		return 1
	}
	r := int(math.Round(2 * math.Log2(math.Log2(float64(n)))))
	if r < 1 {
		r = 1
	}
	if r > d {
		r = d
	}
	return r
}

// Embed builds a tree embedding of pts with the selected method. Points
// must be distinct (use vec.Dedup first); dimension must be ≥ 1.
func Embed(pts []vec.Point, opt Options) (*hst.Tree, *Info, error) {
	n := len(pts)
	if n == 0 {
		return nil, nil, errors.New("core: empty point set")
	}
	d := len(pts[0])
	if d == 0 {
		return nil, nil, errors.New("core: zero-dimensional points")
	}
	for i, p := range pts {
		if len(p) != d {
			return nil, nil, fmt.Errorf("core: point %d has dimension %d, want %d", i, len(p), d)
		}
	}

	r := 1
	switch opt.Method {
	case MethodHybrid:
		r = opt.R
		if r == 0 {
			// Auto-select: start at the paper's Θ(log log n) and escalate
			// until the Lemma-7 grid count per bucket is practical —
			// mirroring the MPC implementation's Lemma-8-driven choice.
			// Uses a conservative 48-level estimate; the exact bound is
			// re-checked (and can only be smaller) once levels are known.
			fp := opt.FailProb
			if fp == 0 {
				fp = min(1e-4, 1/float64(n*n+1))
			}
			for r = autoR(n, d); r < d; r++ {
				if partition.HybridGridBound((d+r-1)/r, n, r, 48, fp) <= maxPracticalGrids {
					break
				}
			}
		}
		if r < 1 || r > d {
			return nil, nil, fmt.Errorf("core: r=%d out of [1, d=%d]", r, d)
		}
	case MethodBall:
		r = 1
	case MethodGrid:
		r = 1 // unused
	default:
		return nil, nil, fmt.Errorf("core: unknown method %v", opt.Method)
	}

	// Pad so r divides d (footnote 3 of the paper). Padding adds zero
	// coordinates and changes no distance.
	work := pts
	if opt.Method != MethodGrid && d%r != 0 {
		work = vec.PadPointsToMultiple(pts, r)
		d = len(work[0])
	}

	diam := opt.Diameter
	if diam == 0 {
		diam = vec.BoundsPar(work, opt.Workers).Diameter()
	}
	if diam == 0 {
		// All points identical; a root with one leaf per point at weight 0
		// is not a valid metric for n > 1. Reject, matching the distinct-
		// points requirement.
		if n > 1 {
			return nil, nil, errors.New("core: points are not distinct (diameter 0)")
		}
		b := hst.NewBuilder(1)
		b.AddLeaf(b.Root(), 0, 1, 0)
		return b.Finish(), &Info{Method: opt.Method, N: 1, Dim: d, R: r, TopScale: 0}, nil
	}

	minDist := opt.MinDist
	if minDist == 0 {
		minDist = vec.MinPairwiseDistPar(work, opt.Workers)
		if math.IsInf(minDist, 1) {
			minDist = diam
		}
	}

	// Level schedule: w_i = diam/2^i for i = 1..L, with L chosen so that
	// the level-L cluster diameter bound (2√r·w_L for ball-based methods,
	// √d·w_L for the grid method) is below the minimum distance — then
	// every surviving cluster is a singleton.
	var diamFactor float64
	if opt.Method == MethodGrid {
		diamFactor = math.Sqrt(float64(d))
	} else {
		diamFactor = 2 * math.Sqrt(float64(r))
	}
	maxLevels := opt.MaxLevels
	if maxLevels == 0 {
		maxLevels = 64
	}
	levels := 1
	for w := diam / 2; diamFactor*w >= minDist && levels < maxLevels; w /= 2 {
		levels++
	}

	failProb := opt.FailProb
	if failProb == 0 {
		// 1/n² with a 1e-4 floor: at small n the pure 1/n² default is
		// loose enough that repeated experiment sweeps hit coverage
		// failures; the floor costs only a log factor in U.
		failProb = min(1e-4, 1/float64(n*n+1))
	}
	maxGrids := opt.MaxGrids
	if maxGrids == 0 && opt.Method != MethodGrid {
		maxGrids = partition.HybridGridBound(d/r, n, r, levels, failProb)
		if maxGrids > maxPracticalGrids {
			return nil, nil, fmt.Errorf("%w: Lemma-7 bound U=%d for k=%d dims/bucket (budget %d)",
				ErrInfeasible, maxGrids, d/r, maxPracticalGrids)
		}
	}

	info := &Info{
		Method:      opt.Method,
		N:           n,
		Dim:         d,
		R:           r,
		Levels:      levels,
		TopScale:    diam,
		MaxGridsCap: maxGrids,
	}

	rnd := rng.New(opt.Seed)
	// ids[i] holds the level-i flat partition identifier per point.
	ids := make([][]string, levels+1)
	// active[p] is false once p's cluster became a singleton (its subtree
	// is finished and further partitioning of p is irrelevant).
	active := make([]bool, n)
	for i := range active {
		active[i] = true
	}

	// clusterKey[p] accumulates the chain of level ids — the path(p)
	// encoding. Points share a level-i cluster iff keys are equal.
	clusterKey := make([]string, n)
	clusterSize := map[string]int{"": n}

	// Quality instrumentation state: a seeded pair sample walked through
	// the levels alongside the points. Two points still together share
	// the whole id chain, so comparing this level's flat ids decides
	// separation; both members of a together pair are in a ≥2-point
	// cluster and therefore still active with fresh ids.
	var qPairs [][2]int
	var qTogether []bool
	var qStats []partition.LevelStat
	if opt.Quality != nil {
		qc := opt.Quality.Config()
		qPairs = quality.SamplePairs(qc.Seed, n, qc.MaxPairs)
		qTogether = make([]bool, len(qPairs))
		for i := range qTogether {
			qTogether[i] = true
		}
	}

	w := diam / 2
	for lev := 1; lev <= levels; lev++ {
		var levIDs []string
		var used int
		var err error
		switch opt.Method {
		case MethodGrid:
			levIDs, used = assignGrid(rnd, work, active, w, opt.Workers)
		default:
			levIDs, used, err = assignHybrid(rnd, work, active, w, r, maxGrids, opt.Workers, info)
			if err != nil {
				return nil, info, err
			}
		}
		info.GridsPerLevel = append(info.GridsPerLevel, used)
		ids[lev] = levIDs
		if opt.Quality != nil {
			qStats = append(qStats, partition.PairLevelStats(work, levIDs, qTogether, qPairs, lev, w, diamFactor*w))
		}

		// Extend chains and recompute cluster sizes; deactivate singletons.
		next := make(map[string]int, len(clusterSize))
		for p := 0; p < n; p++ {
			if !active[p] {
				continue
			}
			clusterKey[p] += levelTag(lev) + levIDs[p]
			next[clusterKey[p]]++
		}
		for p := 0; p < n; p++ {
			if active[p] && next[clusterKey[p]] == 1 {
				active[p] = false
			}
		}
		clusterSize = next
		w /= 2
		// Once every cluster is a singleton the hierarchy is complete;
		// later levels would partition nothing.
		allSingle := true
		for id := range clusterSize {
			if clusterSize[id] > 1 {
				allSingle = false
				break
			}
		}
		if allSingle {
			info.Levels = lev
			levels = lev
			break
		}
	}

	t, err := buildTree(work, ids, levels, diam, diamFactor)
	if err != nil {
		return nil, info, err
	}
	opt.Quality.ObserveLevels(qStats)
	return t, info, nil
}

// levelTag returns a one-byte separator making chain keys prefix-free
// across levels.
func levelTag(lev int) string { return string([]byte{byte(lev)}) }

// assignGrid assigns every active point its cell key under one random
// shifted grid of cell width w. The per-point cell computation fans out
// over workers; each point writes only its own id slot.
func assignGrid(rnd *rng.RNG, pts []vec.Point, active []bool, w float64, workers int) ([]string, int) {
	g := grid.New(rnd, len(pts[0]), w)
	ids := make([]string, len(pts))
	par.For(workers, len(pts), func(lo, hi int) {
		var scratch []int64
		for p := lo; p < hi; p++ {
			if !active[p] {
				continue
			}
			scratch = g.CellCoords(pts[p], scratch)
			ids[p] = grid.Key(scratch)
		}
	})
	return ids, 1
}

// assignHybrid assigns every active point its r-bucket hybrid id at scale
// w, drawing up to maxGrids grids per bucket. It mirrors Algorithm 2's
// structure: grids are global per (level, bucket), not per cluster —
// clusters are refined implicitly by the chain keys.
func assignHybrid(rnd *rng.RNG, pts []vec.Point, active []bool, w float64, r, maxGrids, workers int, info *Info) ([]string, int, error) {
	n := len(pts)
	d := len(pts[0])
	ids := make([]string, n)
	totalGrids := 0
	covered := make([]int, par.Workers(workers))
	for j := 0; j < r; j++ {
		// Lazy draw: stop as soon as all active points are covered. Grids
		// come serially off the RNG; the coverage scan fans out, each point
		// writing only its own slot, with per-shard exact integer counts.
		assigned := make([]string, n)
		remaining := 0
		for p := 0; p < n; p++ {
			if active[p] {
				remaining++
			}
		}
		for u := 0; u < maxGrids && remaining > 0; u++ {
			g := grid.New(rnd, d/r, 4*w)
			totalGrids++
			info.GridWords += g.Words()
			s := par.Shards(workers, n, func(shard, lo, hi int) {
				var scratch [16]int64
				cnt := 0
				for p := lo; p < hi; p++ {
					if !active[p] || assigned[p] != "" {
						continue
					}
					if idx, in := g.InBall(vec.Bucket(pts[p], j, r), w, scratch[:0]); in {
						assigned[p] = grid.KeyWithPrefix(uint64(u), idx)
						cnt++
					}
				}
				covered[shard] = cnt
			})
			for i := 0; i < s; i++ {
				remaining -= covered[i]
			}
		}
		if remaining > 0 {
			return nil, totalGrids, fmt.Errorf("%w (bucket %d, scale %g, %d uncovered)", ErrCoverageFailure, j, w, remaining)
		}
		par.For(workers, n, func(lo, hi int) {
			for p := lo; p < hi; p++ {
				if active[p] {
					ids[p] += string([]byte{byte(j)}) + assigned[p]
				}
			}
		})
	}
	return ids, totalGrids, nil
}

// buildTree converts per-level flat ids into the weighted tree. Edge
// weight into level i is diamFactor·w_i (w_i = diam/2^i); a cluster that
// becomes a singleton at level i is emitted as a leaf at level i and not
// refined further.
func buildTree(pts []vec.Point, ids [][]string, levels int, diam, diamFactor float64) (*hst.Tree, error) {
	t, _, _, err := buildTreeNav(pts, ids, levels, diam, diamFactor)
	return t, err
}

// buildTreeNav is buildTree plus the navigation structures the Embedder
// uses for out-of-sample queries: childByID[v] maps a level-id to the
// child of v holding that part, and repLeaf[v] is one data point living
// in v's subtree.
func buildTreeNav(pts []vec.Point, ids [][]string, levels int, diam, diamFactor float64) (*hst.Tree, []map[string]int, []int, error) {
	n := len(pts)
	b := hst.NewBuilder(n)
	childByID := []map[string]int{nil} // grows with the arena
	repLeaf := []int{-1}

	addNode := func(parent int, weight float64, lev, rep int) int {
		id := b.AddNode(parent, weight, lev)
		childByID = append(childByID, nil)
		repLeaf = append(repLeaf, rep)
		return id
	}
	addLeaf := func(parent int, weight float64, lev, p int) int {
		id := b.AddLeaf(parent, weight, lev, p)
		childByID = append(childByID, nil)
		repLeaf = append(repLeaf, p)
		return id
	}
	link := func(parent int, id string, child int) {
		if childByID[parent] == nil {
			childByID[parent] = make(map[string]int)
		}
		childByID[parent][id] = child
	}

	type clus struct {
		node   int
		points []int
	}
	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	repLeaf[0] = 0
	frontier := []clus{{node: b.Root(), points: all}}
	w := diam / 2
	for lev := 1; lev <= levels && len(frontier) > 0; lev++ {
		weight := diamFactor * w
		var next []clus
		for _, c := range frontier {
			if len(c.points) == 1 {
				p := c.points[0]
				leaf := addLeaf(c.node, weight, lev, p)
				if id := ids[lev][p]; id != "" {
					link(c.node, id, leaf)
				}
				continue
			}
			groups := make(map[string][]int)
			var order []string
			for _, p := range c.points {
				id := ids[lev][p]
				if _, seen := groups[id]; !seen {
					order = append(order, id)
				}
				groups[id] = append(groups[id], p)
			}
			for _, id := range order {
				g := groups[id]
				if len(g) == 1 {
					leaf := addLeaf(c.node, weight, lev, g[0])
					link(c.node, id, leaf)
					continue
				}
				child := addNode(c.node, weight, lev, g[0])
				link(c.node, id, child)
				next = append(next, clus{node: child, points: g})
			}
		}
		frontier = next
		w /= 2
	}
	// Any cluster still holding several points after the last level (only
	// possible through floating-point boundary effects) is force-split
	// into leaves one level below, preserving domination.
	weight := diamFactor * w
	for _, c := range frontier {
		for _, p := range c.points {
			addLeaf(c.node, weight, levels+1, p)
		}
	}
	t := b.Finish()
	if err := t.Validate(); err != nil {
		return nil, nil, nil, fmt.Errorf("core: built invalid tree: %v", err)
	}
	return t, childByID, repLeaf, nil
}
