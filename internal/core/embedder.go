// Embedder: a persistent embedding index. Where Embed produces just the
// tree, NewEmbedder additionally retains the random grids that defined
// every level's partitioning, so that *out-of-sample* query points can be
// located in the hierarchy afterwards — the "compact representation of a
// high-dimensional dataset" use the paper motivates, turned into an
// approximate-nearest-neighbor index: a query descends the tree through
// the same grid assignments as the data did, and the deepest non-empty
// cluster it reaches yields candidate neighbors whose tree distance to
// the query is bounded by that cluster's diameter.
package core

import (
	"errors"
	"fmt"
	"math"

	"mpctree/internal/grid"
	"mpctree/internal/hst"
	"mpctree/internal/partition"
	"mpctree/internal/rng"
	"mpctree/internal/vec"
)

// Embedder is an immutable embedding index over a fixed point set.
type Embedder struct {
	opt        Options
	method     Method
	pts        []vec.Point // working (padded) copy
	origDim    int
	r          int
	levels     int
	diam       float64
	diamFactor float64
	// grids[lev-1][j] is the ordered grid sequence of level lev, bucket j
	// (one entry, one grid for the grid method).
	grids     [][][]grid.Grid
	tree      *hst.Tree
	childByID []map[string]int
	repLeaf   []int
}

// NewEmbedder builds the embedding and retains its structures. Options
// semantics match Embed.
func NewEmbedder(pts []vec.Point, opt Options) (*Embedder, error) {
	n := len(pts)
	if n == 0 {
		return nil, errors.New("core: empty point set")
	}
	d := len(pts[0])
	if d == 0 {
		return nil, errors.New("core: zero-dimensional points")
	}
	for i, p := range pts {
		if len(p) != d {
			return nil, fmt.Errorf("core: point %d has dimension %d, want %d", i, len(p), d)
		}
	}
	r := 1
	switch opt.Method {
	case MethodHybrid:
		r = opt.R
		if r == 0 {
			fp := opt.FailProb
			if fp == 0 {
				fp = min(1e-4, 1/float64(n*n+1))
			}
			for r = autoR(n, d); r < d; r++ {
				if partition.HybridGridBound((d+r-1)/r, n, r, 48, fp) <= maxPracticalGrids {
					break
				}
			}
		}
		if r < 1 || r > d {
			return nil, fmt.Errorf("core: r=%d out of [1, d=%d]", r, d)
		}
	case MethodBall:
		r = 1
	case MethodGrid:
		r = 1
	default:
		return nil, fmt.Errorf("core: unknown method %v", opt.Method)
	}

	work := pts
	if opt.Method != MethodGrid && d%r != 0 {
		work = vec.PadPointsToMultiple(pts, r)
	}
	wd := len(work[0])

	diam := opt.Diameter
	if diam == 0 {
		diam = vec.Bounds(work).Diameter()
	}
	if diam == 0 {
		if n > 1 {
			return nil, errors.New("core: points are not distinct (diameter 0)")
		}
		b := hst.NewBuilder(1)
		b.AddLeaf(b.Root(), 0, 1, 0)
		return &Embedder{
			opt: opt, method: opt.Method, pts: work, origDim: d, r: r,
			tree:      b.Finish(),
			childByID: []map[string]int{nil, nil},
			repLeaf:   []int{0, 0},
		}, nil
	}
	minDist := opt.MinDist
	if minDist == 0 {
		minDist = vec.MinPairwiseDist(work)
		if math.IsInf(minDist, 1) {
			minDist = diam
		}
	}
	var diamFactor float64
	if opt.Method == MethodGrid {
		diamFactor = math.Sqrt(float64(wd))
	} else {
		diamFactor = 2 * math.Sqrt(float64(r))
	}
	maxLevels := opt.MaxLevels
	if maxLevels == 0 {
		maxLevels = 64
	}
	levels := 1
	for w := diam / 2; diamFactor*w >= minDist && levels < maxLevels; w /= 2 {
		levels++
	}
	failProb := opt.FailProb
	if failProb == 0 {
		failProb = min(1e-4, 1/float64(n*n+1))
	}
	maxGrids := opt.MaxGrids
	if maxGrids == 0 && opt.Method != MethodGrid {
		maxGrids = partition.HybridGridBound(wd/r, n, r, levels, failProb)
		if maxGrids > maxPracticalGrids {
			return nil, fmt.Errorf("%w: Lemma-7 bound U=%d for k=%d dims/bucket (budget %d)",
				ErrInfeasible, maxGrids, wd/r, maxPracticalGrids)
		}
	}

	e := &Embedder{
		opt: opt, method: opt.Method, pts: work, origDim: d, r: r,
		diam: diam, diamFactor: diamFactor, levels: levels,
	}

	rnd := rng.New(opt.Seed)
	ids := make([][]string, levels+1)
	active := make([]bool, n)
	for i := range active {
		active[i] = true
	}
	clusterKey := make([]string, n)

	w := diam / 2
	var scratch [16]int64
	for lev := 1; lev <= levels; lev++ {
		levIDs := make([]string, n)
		levGrids := make([][]grid.Grid, 0, e.r)
		if opt.Method == MethodGrid {
			g := grid.New(rnd, wd, w)
			levGrids = append(levGrids, []grid.Grid{g})
			for p := range work {
				if !active[p] {
					continue
				}
				sc := g.CellCoords(work[p], scratch[:0])
				levIDs[p] = grid.Key(sc)
			}
		} else {
			for j := 0; j < e.r; j++ {
				assigned := make([]string, n)
				remaining := 0
				for p := 0; p < n; p++ {
					if active[p] {
						remaining++
					}
				}
				var bucketGrids []grid.Grid
				for u := 0; u < maxGrids && remaining > 0; u++ {
					g := grid.New(rnd, wd/e.r, 4*w)
					bucketGrids = append(bucketGrids, g)
					for p := 0; p < n; p++ {
						if !active[p] || assigned[p] != "" {
							continue
						}
						if idx, in := g.InBall(vec.Bucket(work[p], j, e.r), w, scratch[:0]); in {
							assigned[p] = grid.KeyWithPrefix(uint64(u), idx)
							remaining--
						}
					}
				}
				if remaining > 0 {
					return nil, fmt.Errorf("%w (bucket %d, scale %g, %d uncovered)", ErrCoverageFailure, j, w, remaining)
				}
				levGrids = append(levGrids, bucketGrids)
				for p := 0; p < n; p++ {
					if active[p] {
						levIDs[p] += string([]byte{byte(j)}) + assigned[p]
					}
				}
			}
		}
		e.grids = append(e.grids, levGrids)
		ids[lev] = levIDs

		next := make(map[string]int)
		for p := 0; p < n; p++ {
			if !active[p] {
				continue
			}
			clusterKey[p] += levelTag(lev) + levIDs[p]
			next[clusterKey[p]]++
		}
		for p := 0; p < n; p++ {
			if active[p] && next[clusterKey[p]] == 1 {
				active[p] = false
			}
		}
		w /= 2
		allSingle := true
		for _, sz := range next {
			if sz > 1 {
				allSingle = false
				break
			}
		}
		if allSingle {
			e.levels = lev
			levels = lev
			break
		}
	}
	e.levels = levels

	t, childByID, repLeaf, err := buildTreeNav(work, ids, levels, diam, diamFactor)
	if err != nil {
		return nil, err
	}
	e.tree, e.childByID, e.repLeaf = t, childByID, repLeaf
	return e, nil
}

// Tree returns the embedding tree.
func (e *Embedder) Tree() *hst.Tree { return e.tree }

// NumPoints returns the indexed point count.
func (e *Embedder) NumPoints() int { return len(e.pts) }

// queryID computes the level-lev flat id of q (1-based level), or "" if q
// is uncovered at that level.
func (e *Embedder) queryID(q vec.Point, lev int) string {
	w := e.diam / math.Pow(2, float64(lev))
	var scratch [16]int64
	levGrids := e.grids[lev-1]
	if e.method == MethodGrid {
		g := levGrids[0][0]
		sc := g.CellCoords(q, scratch[:0])
		return grid.Key(sc)
	}
	id := ""
	for j := 0; j < e.r; j++ {
		found := false
		for u, g := range levGrids[j] {
			if idx, in := g.InBall(vec.Bucket(q, j, e.r), w, scratch[:0]); in {
				id += string([]byte{byte(j)}) + grid.KeyWithPrefix(uint64(u), idx)
				found = true
				break
			}
		}
		if !found {
			return ""
		}
	}
	return id
}

// Locate descends the hierarchy with the same random grids that embedded
// the data and returns the deepest tree node whose cluster the query
// falls into (the root if it immediately diverges), plus the depth
// reached in levels.
func (e *Embedder) Locate(q vec.Point) (node, level int) {
	if len(q) != e.origDim {
		panic(fmt.Sprintf("core: query dimension %d, index expects %d", len(q), e.origDim))
	}
	qq := q
	if len(e.pts) > 0 && len(q) < len(e.pts[0]) {
		qq = make(vec.Point, len(e.pts[0]))
		copy(qq, q)
	}
	node = 0
	for lev := 1; lev <= e.levels; lev++ {
		id := e.queryID(qq, lev)
		if id == "" {
			return node, lev - 1
		}
		m := e.childByID[node]
		child, ok := m[id]
		if !ok {
			return node, lev - 1
		}
		node = child
		if e.tree.Nodes[node].Point >= 0 {
			return node, lev
		}
	}
	return node, e.levels
}

// NearestCandidate returns an approximate nearest neighbor of q: the
// representative point of the deepest cluster q reaches. The returned
// distance is exact (Euclidean, against the original coordinates). The
// candidate's quality follows the embedding guarantee: points that stay
// with q through many levels are within O(√r·w_level) of it.
func (e *Embedder) NearestCandidate(q vec.Point) (point int, dist float64) {
	node, _ := e.Locate(q)
	p := e.repLeaf[node]
	if p < 0 {
		p = 0
	}
	qq := q
	if len(q) < len(e.pts[0]) {
		qq = make(vec.Point, len(e.pts[0]))
		copy(qq, q)
	}
	return p, vec.Dist(e.pts[p], qq)
}

// Refine improves a candidate by scanning every point in the located
// cluster and returning the true nearest among them — still typically far
// fewer than n points.
func (e *Embedder) Refine(q vec.Point) (point int, dist float64) {
	node, _ := e.Locate(q)
	qq := q
	if len(q) < len(e.pts[0]) {
		qq = make(vec.Point, len(e.pts[0]))
		copy(qq, q)
	}
	best, bestD := -1, math.Inf(1)
	var walk func(v int)
	walk = func(v int) {
		if p := e.tree.Nodes[v].Point; p >= 0 {
			if d := vec.Dist(e.pts[p], qq); d < bestD {
				best, bestD = p, d
			}
		}
		for _, c := range e.tree.Nodes[v].Children {
			walk(c)
		}
	}
	walk(node)
	if best == -1 {
		return e.NearestCandidate(q)
	}
	return best, bestD
}
