package core

import (
	"testing"

	"mpctree/internal/fjlt"
	"mpctree/internal/mpc"
	"mpctree/internal/vec"
)

func pipelineCluster() *mpc.Cluster {
	return mpc.New(mpc.Config{Machines: 4, CapWords: 1 << 22})
}

// Small-n experiments need the JL constant dialled down or k exceeds the
// ambient dimension; CK=1 is the standard empirical choice.
func pipelineOpts(seed uint64) PipelineOptions {
	return PipelineOptions{Xi: 0.3, FJLT: fjlt.Options{CK: 1}, Seed: seed}
}

// End-to-end Theorem 1 on genuinely high-dimensional data: the FJLT stage
// must engage, the tree must dominate the ORIGINAL distances (post-rescale)
// and the whole thing must take O(1) rounds.
func TestPipelineHighDimensional(t *testing.T) {
	pts := latticePts(t, 1, 48, 300, 32) // d=300 ≫ k
	c := pipelineCluster()
	tree, info, err := EmbedPipeline(c, pts, pipelineOpts(3))
	if err != nil {
		t.Fatalf("%v (info %+v)", err, info)
	}
	if !info.UsedFJLT {
		t.Fatal("FJLT stage skipped on 300-dimensional input")
	}
	if info.EmbedInfo.Dim > 2*info.FJLTParams.K {
		t.Errorf("embedding ran in dimension %d, expected ≈ k=%d", info.EmbedInfo.Dim, info.FJLTParams.K)
	}
	violations := 0
	pairs := 0
	for i := 0; i < len(pts); i++ {
		for j := i + 1; j < len(pts); j++ {
			pairs++
			if tree.Dist(i, j) < vec.Dist(pts[i], pts[j])-1e-9 {
				violations++
			}
		}
	}
	// Domination is w.h.p. through the FJLT; demand it outright here
	// (a single violation would indicate the rescaling is wrong).
	if violations > 0 {
		t.Errorf("%d/%d pairs violate domination after rescale", violations, pairs)
	}
	if info.TotalRounds > 24 {
		t.Errorf("pipeline took %d rounds", info.TotalRounds)
	}
}

// Low-dimensional inputs must skip the FJLT (it would inflate d).
func TestPipelineSkipsJLWhenLowDim(t *testing.T) {
	pts := latticePts(t, 2, 40, 4, 64)
	c := pipelineCluster()
	tree, info, err := EmbedPipeline(c, pts, pipelineOpts(5))
	if err != nil {
		t.Fatal(err)
	}
	if info.UsedFJLT {
		t.Error("FJLT engaged on 4-dimensional input")
	}
	for i := 0; i < len(pts); i++ {
		for j := i + 1; j < len(pts); j++ {
			if tree.Dist(i, j) < vec.Dist(pts[i], pts[j])-1e-9 {
				t.Fatal("domination violated")
			}
		}
	}
}

// O(1) rounds: the count may shift by a few with broadcast-tree depth
// (blob sizes grow logarithmically with n), but must stay under a fixed
// ceiling as n quadruples.
func TestPipelineRoundsBounded(t *testing.T) {
	for _, n := range []int{24, 96} {
		pts := latticePts(t, 4, n, 300, 32)
		c := pipelineCluster()
		_, info, err := EmbedPipeline(c, pts, pipelineOpts(7))
		if err != nil {
			t.Fatal(err)
		}
		if info.TotalRounds > 24 {
			t.Errorf("n=%d: pipeline took %d rounds", n, info.TotalRounds)
		}
	}
}

func TestPipelineBadInputs(t *testing.T) {
	c := pipelineCluster()
	if _, _, err := EmbedPipeline(c, nil, PipelineOptions{}); err == nil {
		t.Error("empty accepted")
	}
	c2 := pipelineCluster()
	if _, _, err := EmbedPipeline(c2, []vec.Point{{}}, PipelineOptions{}); err == nil {
		t.Error("zero-dim accepted")
	}
	c3 := pipelineCluster()
	if _, _, err := EmbedPipeline(c3, latticePts(t, 5, 8, 4, 16), PipelineOptions{Xi: 0.9}); err == nil {
		t.Error("xi=0.9 accepted")
	}
}

// Distortion sanity across the full pipeline: mean tree/original ratio is
// bounded by a generous multiple of the theory bound.
func TestPipelineDistortionSane(t *testing.T) {
	pts := latticePts(t, 6, 40, 200, 64)
	var sum float64
	var cnt int
	for seed := uint64(0); seed < 3; seed++ {
		c := pipelineCluster()
		tree, _, err := EmbedPipeline(c, pts, pipelineOpts(seed))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < len(pts); i++ {
			for j := i + 1; j < len(pts); j++ {
				sum += tree.Dist(i, j) / vec.Dist(pts[i], pts[j])
				cnt++
			}
		}
	}
	mean := sum / float64(cnt)
	if mean < 1 || mean > 200 {
		t.Errorf("pipeline mean distortion %v out of sane range", mean)
	}
}
