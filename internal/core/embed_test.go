package core

import (
	"errors"
	"math"
	"testing"

	"mpctree/internal/rng"
	"mpctree/internal/vec"
)

// latticePts draws n distinct integer points in [1, delta]^d.
func latticePts(t testing.TB, seed uint64, n, d, delta int) []vec.Point {
	t.Helper()
	r := rng.New(seed)
	seen := map[string]bool{}
	pts := make([]vec.Point, 0, n)
	for len(pts) < n {
		p := make(vec.Point, d)
		key := ""
		for j := range p {
			v := 1 + r.Intn(delta)
			p[j] = float64(v)
			key += string(rune(v)) + ","
		}
		if !seen[key] {
			seen[key] = true
			pts = append(pts, p)
		}
	}
	return pts
}

func embedOrFail(t *testing.T, pts []vec.Point, opt Options) *Info {
	t.Helper()
	_, info, err := Embed(pts, opt)
	if err != nil {
		t.Fatalf("Embed(%v): %v", opt.Method, err)
	}
	return info
}

// Theorem 2 property 1 (and Theorem 1 property 1): domination.
// dist_T(p,q) ≥ ‖p−q‖ must hold deterministically for every method.
func TestDominationAllMethods(t *testing.T) {
	pts := latticePts(t, 1, 120, 4, 64)
	for _, m := range []Method{MethodHybrid, MethodGrid, MethodBall} {
		for seed := uint64(0); seed < 3; seed++ {
			tr, _, err := Embed(pts, Options{Method: m, R: 2, Seed: seed})
			if err != nil {
				t.Fatalf("%v seed %d: %v", m, seed, err)
			}
			for i := 0; i < len(pts); i++ {
				for j := i + 1; j < len(pts); j++ {
					td := tr.Dist(i, j)
					ed := vec.Dist(pts[i], pts[j])
					if td < ed-1e-9 {
						t.Fatalf("%v: domination violated for (%d,%d): tree %v < euclid %v", m, i, j, td, ed)
					}
				}
			}
		}
	}
}

// Theorem 2 property 2: expected distortion is bounded. We check the
// empirical mean over independent trees is within a generous constant of
// the √(d·r)·log₂Δ bound for hybrid, and √d·log₂Δ·... for grid.
func TestExpectedDistortionBounded(t *testing.T) {
	pts := latticePts(t, 2, 80, 4, 256)
	const trees = 30
	n := len(pts)
	sum := make([][]float64, n)
	for i := range sum {
		sum[i] = make([]float64, n)
	}
	for s := 0; s < trees; s++ {
		tr, _, err := Embed(pts, Options{Method: MethodHybrid, R: 2, Seed: uint64(s)})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				sum[i][j] += tr.Dist(i, j)
			}
		}
	}
	var worst float64
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			ratio := (sum[i][j] / trees) / vec.Dist(pts[i], pts[j])
			if ratio > worst {
				worst = ratio
			}
		}
	}
	// Bound: O(√(d·r)·logΔ) = √8·8 ≈ 22.6; constant slack 8.
	bound := 8 * math.Sqrt(4*2) * math.Log2(256)
	if worst > bound {
		t.Errorf("worst mean distortion %v exceeds loose bound %v", worst, bound)
	}
	if worst < 1 {
		t.Errorf("mean distortion %v below 1 — domination broken in expectation?!", worst)
	}
}

func TestDeterministicUnderSeed(t *testing.T) {
	pts := latticePts(t, 3, 60, 4, 64)
	t1, _, err1 := Embed(pts, Options{Method: MethodHybrid, R: 2, Seed: 9})
	t2, _, err2 := Embed(pts, Options{Method: MethodHybrid, R: 2, Seed: 9})
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if t1.NumNodes() != t2.NumNodes() {
		t.Fatal("same seed produced different trees")
	}
	for i := 0; i < len(pts); i++ {
		for j := i + 1; j < len(pts); j++ {
			if t1.Dist(i, j) != t2.Dist(i, j) {
				t.Fatal("same seed produced different metrics")
			}
		}
	}
	t3, _, _ := Embed(pts, Options{Method: MethodHybrid, R: 2, Seed: 10})
	diff := false
	for i := 0; i < len(pts) && !diff; i++ {
		for j := i + 1; j < len(pts); j++ {
			if t1.Dist(i, j) != t3.Dist(i, j) {
				diff = true
				break
			}
		}
	}
	if !diff {
		t.Error("different seeds produced identical metrics (suspicious)")
	}
}

func TestEveryPointIsALeaf(t *testing.T) {
	pts := latticePts(t, 4, 100, 3, 128)
	for _, m := range []Method{MethodHybrid, MethodGrid, MethodBall} {
		tr, _, err := Embed(pts, Options{Method: m, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		if tr.NumPoints() != len(pts) {
			t.Fatalf("%v: %d leaves for %d points", m, tr.NumPoints(), len(pts))
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("%v: %v", m, err)
		}
	}
}

func TestCoverageFailureReported(t *testing.T) {
	pts := latticePts(t, 5, 200, 6, 64)
	// MaxGrids=1 in 6 dimensions with r=1: cover probability per grid is
	// ~0.2%, so failure is (overwhelmingly) certain — and must surface as
	// ErrCoverageFailure, not as a bogus tree.
	_, _, err := Embed(pts, Options{Method: MethodBall, MaxGrids: 1, Seed: 6})
	if !errors.Is(err, ErrCoverageFailure) {
		t.Fatalf("expected ErrCoverageFailure, got %v", err)
	}
}

func TestSinglePoint(t *testing.T) {
	tr, info, err := Embed([]vec.Point{{3, 4}}, Options{Method: MethodHybrid, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumPoints() != 1 || info.N != 1 {
		t.Error("single point embedding wrong")
	}
}

func TestDuplicatePointsRejected(t *testing.T) {
	_, _, err := Embed([]vec.Point{{1, 1}, {1, 1}}, Options{Method: MethodHybrid, Seed: 1})
	if err == nil {
		t.Fatal("duplicate points not rejected")
	}
}

func TestEmptyAndMalformedInputs(t *testing.T) {
	if _, _, err := Embed(nil, Options{}); err == nil {
		t.Error("empty input accepted")
	}
	if _, _, err := Embed([]vec.Point{{}}, Options{}); err == nil {
		t.Error("zero-dim accepted")
	}
	if _, _, err := Embed([]vec.Point{{1, 2}, {1}}, Options{}); err == nil {
		t.Error("ragged dimensions accepted")
	}
	if _, _, err := Embed(latticePts(t, 6, 4, 4, 8), Options{Method: MethodHybrid, R: 7}); err == nil {
		t.Error("r > d accepted")
	}
	if _, _, err := Embed(latticePts(t, 6, 4, 4, 8), Options{Method: Method(42)}); err == nil {
		t.Error("unknown method accepted")
	}
}

// r must divide d after padding; a non-dividing r exercises the padding
// path and must still produce a valid dominating tree.
func TestPaddingPath(t *testing.T) {
	pts := latticePts(t, 7, 50, 5, 64) // d=5, r=2 ⇒ pad to 6
	tr, info, err := Embed(pts, Options{Method: MethodHybrid, R: 2, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if info.Dim != 6 {
		t.Errorf("padded dim = %d, want 6", info.Dim)
	}
	for i := 0; i < len(pts); i++ {
		for j := i + 1; j < len(pts); j++ {
			if tr.Dist(i, j) < vec.Dist(pts[i], pts[j])-1e-9 {
				t.Fatal("domination violated on padded input")
			}
		}
	}
}

func TestAutoR(t *testing.T) {
	if r := autoR(2, 10); r != 1 {
		t.Errorf("autoR(2) = %d", r)
	}
	// n = 2^16: log2 log2 = 4, r = 8 capped by d.
	if r := autoR(1<<16, 20); r != 8 {
		t.Errorf("autoR(2^16) = %d", r)
	}
	if r := autoR(1<<16, 3); r != 3 {
		t.Errorf("autoR capped = %d", r)
	}
}

func TestInfoAccounting(t *testing.T) {
	pts := latticePts(t, 8, 80, 4, 128)
	info := embedOrFail(t, pts, Options{Method: MethodHybrid, R: 2, Seed: 3})
	if info.Levels < 3 {
		t.Errorf("suspiciously few levels: %d", info.Levels)
	}
	if len(info.GridsPerLevel) != info.Levels {
		t.Errorf("GridsPerLevel has %d entries for %d levels", len(info.GridsPerLevel), info.Levels)
	}
	if info.GridWords <= 0 {
		t.Error("GridWords not accounted")
	}
	for lev, g := range info.GridsPerLevel {
		if g < 2 { // at least one grid per bucket, 2 buckets
			t.Errorf("level %d used %d grids", lev, g)
		}
	}
}

// The ablation claim (Section 1.3.1): grid-partitioning trees use far
// fewer stored grids than ball-partitioning trees; hybrid sits between,
// with grid storage growing as r shrinks.
func TestGridStorageDecreasesWithR(t *testing.T) {
	pts := latticePts(t, 9, 150, 4, 64)
	words := map[int]int{}
	for _, r := range []int{1, 2, 4} {
		info := embedOrFail(t, pts, Options{Method: MethodHybrid, R: r, Seed: 4})
		words[r] = info.GridWords
	}
	if !(words[1] > words[2] && words[2] > words[4]) {
		t.Errorf("grid storage not decreasing in r: %v", words)
	}
}

// Tree distances between close pairs must shrink as the pair distance
// shrinks (scale sensitivity — the embedding is not collapsing levels).
func TestScaleSensitivity(t *testing.T) {
	pts := []vec.Point{{1, 1}, {3, 1}, {1000, 1000}, {1000, 996}}
	var closeSum, farSum float64
	const trees = 40
	for s := 0; s < trees; s++ {
		tr, _, err := Embed(pts, Options{Method: MethodHybrid, R: 1, Seed: uint64(s)})
		if err != nil {
			t.Fatal(err)
		}
		closeSum += tr.Dist(0, 1)
		farSum += tr.Dist(0, 2)
	}
	if closeSum/trees >= farSum/trees {
		t.Errorf("mean tree distance for close pair (%v) not below far pair (%v)", closeSum/trees, farSum/trees)
	}
}

func TestMethodString(t *testing.T) {
	if MethodHybrid.String() != "hybrid" || MethodGrid.String() != "grid" || MethodBall.String() != "ball" {
		t.Error("Method.String wrong")
	}
	if Method(9).String() == "" {
		t.Error("unknown method string empty")
	}
}

func BenchmarkEmbedHybrid(b *testing.B) {
	pts := latticePts(b, 1, 500, 4, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Embed(pts, Options{Method: MethodHybrid, R: 2, Seed: uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEmbedGrid(b *testing.B) {
	pts := latticePts(b, 1, 500, 4, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Embed(pts, Options{Method: MethodGrid, Seed: uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}
