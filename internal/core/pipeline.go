// The full Theorem-1 pipeline: MPC Fast Johnson–Lindenstrauss dimension
// reduction (Theorem 3) followed by MPC hybrid partitioning (Algorithm 2),
// producing an O(log^1.5 n)-distortion tree embedding in O(1) rounds.
package core

import (
	"errors"
	"fmt"

	"mpctree/internal/arena"
	"mpctree/internal/fjlt"
	"mpctree/internal/hst"
	"mpctree/internal/mpc"
	"mpctree/internal/mpcembed"
	"mpctree/internal/obs"
	"mpctree/internal/quality"
	"mpctree/internal/resilient"
	"mpctree/internal/vec"
)

// PipelineOptions configures the end-to-end Theorem-1 run.
type PipelineOptions struct {
	// Xi is the FJLT distortion parameter ξ ∈ (0, 0.5); 0 means 0.3.
	Xi float64
	// FJLT tunes the transform further (CK, CQ, ForceK). Xi here wins
	// over FJLT.Xi when both set.
	FJLT fjlt.Options
	// Embed tunes the hybrid partitioning stage. Embed.MinDist, if 0, is
	// derived as (1−ξ)·MinDist of the ORIGINAL data (default 1: integer
	// lattice inputs, as Theorem 1 assumes).
	Embed mpcembed.Options
	// MinDist of the original data; 0 means 1 (lattice inputs).
	MinDist float64
	// SkipJLBelow skips dimension reduction when the input dimension is
	// already at most this (running the FJLT would not reduce it).
	// 0 means k, the FJLT target dimension.
	SkipJLBelow int
	// Seed drives both stages.
	Seed uint64
	// Workers bounds the data-parallel fan-out of pure per-point/per-vector
	// compute in both stages (par.Workers semantics: ≤ 0 means
	// runtime.GOMAXPROCS(0), 1 is serial). The embedding is bit-identical
	// for any value — randomness stays serial, only compute fans out.
	Workers int

	// Resilient executes each stage under the retrying driver: a
	// checkpoint at every stage boundary, bounded retries after injected
	// faults, and resource escalation after genuine memory-cap
	// violations. Retries replay the stage with its original seed, so a
	// recovered run's tree is bit-identical to the fault-free run's.
	Resilient bool
	// Retry tunes the retrying driver (zero value = resilient defaults);
	// ignored unless Resilient is set.
	Retry resilient.Options
	// NoDegrade disables the degradation policy: when set, exhausting the
	// FJLT stage's retry budget fails the pipeline instead of falling
	// back to embedding the original, un-reduced points.
	NoDegrade bool

	// Span, if non-nil, receives one child span per stage attempt:
	// "jl_projection" for the FJLT stage (Algorithm 3) and "tree_embed"
	// for hybrid partitioning (Algorithm 2) — the latter with
	// grid_construction / root_paths / tree_build children attributed
	// inside mpcembed. Each attempt span carries the exact rounds and
	// comm_words it consumed (from the cluster meters); failed attempts
	// are marked failed=1 and retries attempt=k. Spans are observational
	// only: the output tree is bit-identical with or without them.
	Span *obs.Span

	// Quality, if non-nil, audits the FINAL tree (after the 1/(1−ξ)
	// rescale) against the ORIGINAL points on the collector's seeded pair
	// sample and publishes the quality_* series, plus the per-scale
	// Lemma-1 observables from inside the embedding stage. When the
	// collector's MaxMeanRatio is zero, the Theorem-2 alarm threshold
	// defaults to Thm2Bound over the run's actual (d, r, levels).
	// Observational only: the tree is bit-identical with or without it.
	Quality *quality.Collector
}

// PipelineInfo aggregates accounting across both stages.
type PipelineInfo struct {
	UsedFJLT    bool
	FJLTParams  fjlt.Params
	FJLTRounds  int
	EmbedInfo   *mpcembed.Info
	TotalRounds int
	PeakLocal   int
	TotalSpace  int
	CommWords   int

	// Degraded reports that the FJLT stage exhausted its retries and the
	// pipeline fell back to embedding the original, un-reduced points
	// (with MinDist left unadjusted — distances were never contracted).
	Degraded       bool
	DegradedReason string
	// Recovery accounting (zero when nothing failed): stage attempts,
	// resource escalations, virtual backoff charged by the retry driver,
	// faults the cluster injected, and checkpoint/restore overhead.
	Attempts         int
	Escalations      int
	VirtualBackoffMs int64
	Faults           mpc.FaultStats
	Recovery         mpc.RecoveryStats
}

// EmbedPipeline runs Theorem 1 on the cluster: reduce dimension with the
// MPC FJLT when it helps, then build the tree with MPC hybrid
// partitioning. The returned tree is rescaled by 1/(1−ξ) after dimension
// reduction so that, whenever the FJLT met its (1±ξ) guarantee, the tree
// metric still dominates the ORIGINAL Euclidean distances.
func EmbedPipeline(c *mpc.Cluster, pts []vec.Point, opt PipelineOptions) (*hst.Tree, *PipelineInfo, error) {
	n := len(pts)
	if n == 0 {
		return nil, nil, errors.New("core: empty point set")
	}
	d := len(pts[0])
	if d == 0 {
		return nil, nil, errors.New("core: zero-dimensional points")
	}

	xi := opt.Xi
	if xi == 0 {
		xi = opt.FJLT.Xi
	}
	if xi == 0 {
		xi = 0.3
	}
	if xi <= 0 || xi >= 0.5 {
		return nil, nil, fmt.Errorf("core: xi=%v out of (0, 0.5)", xi)
	}
	fo := opt.FJLT
	fo.Xi = xi
	fo.Seed = opt.Seed ^ 0xFA57
	if fo.Workers == 0 {
		fo.Workers = opt.Workers
	}
	params, err := fjlt.NewParams(n, d, fo)
	if err != nil {
		return nil, nil, err
	}

	skipBelow := opt.SkipJLBelow
	if skipBelow == 0 {
		skipBelow = params.K
	}

	info := &PipelineInfo{FJLTParams: params}
	work := pts
	minDist := opt.MinDist
	if minDist == 0 {
		minDist = 1
	}

	retry := opt.Retry
	if retry.Seed == 0 {
		retry.Seed = opt.Seed ^ 0xB0FF
	}
	runStage := func(stage, spanName string, step func(sp *obs.Span) error) error {
		runAttempt := func(attempt int) error {
			sp := opt.Span.Child(spanName)
			m0 := c.Metrics()
			err := step(sp)
			sp.End()
			m1 := c.Metrics()
			sp.Add("rounds", int64(m1.Rounds-m0.Rounds))
			sp.Add("comm_words", int64(m1.CommWords-m0.CommWords))
			if attempt > 0 {
				sp.Add("attempt", int64(attempt))
			}
			if err != nil {
				sp.Add("failed", 1)
			}
			return err
		}
		if !opt.Resilient {
			return runAttempt(0)
		}
		st, err := resilient.Run(c, stage, retry, runAttempt)
		info.Attempts += st.Attempts
		info.Escalations += st.Escalations
		info.VirtualBackoffMs += st.VirtualBackoffMs
		return err
	}
	fillRecovery := func() {
		info.Faults = c.FaultStats()
		info.Recovery = c.Recovery()
	}

	if d > skipBelow {
		ferr := runStage("fjlt", "jl_projection", func(_ *obs.Span) error {
			mapped, err := fjlt.ApplyMPC(c, pts, params, 0, fo.Workers)
			if err != nil {
				return err
			}
			// Clear transformed outputs off the cluster before the
			// embedding stage loads its own records (driver handoff, not
			// a round).
			if err := c.LocalMap(func(m int, local []mpc.Record) []mpc.Record { return nil }); err != nil {
				return err
			}
			work = mapped
			return nil
		})
		switch {
		case ferr == nil:
			info.UsedFJLT = true
			info.FJLTRounds = c.Metrics().Rounds
			// Distances contracted by at most (1−ξ) w.h.p.
			minDist *= 1 - xi
		case opt.Resilient && !opt.NoDegrade:
			// Degradation policy: the reduction stage is unrecoverable,
			// so embed the ORIGINAL points. MinDist stays unadjusted
			// (distances were never contracted) and no rescale happens
			// at the end. resilient.Run left the cluster restored to the
			// stage-entry checkpoint.
			info.Degraded = true
			info.DegradedReason = ferr.Error()
			work = pts
		default:
			fillRecovery()
			return nil, info, ferr
		}
	}

	eo := opt.Embed
	if eo.Seed == 0 {
		eo.Seed = opt.Seed ^ 0x7EE
	}
	if eo.Workers == 0 {
		eo.Workers = opt.Workers
	}
	if eo.MinDist == 0 {
		eo.MinDist = minDist
	}
	// One arena serves every embed attempt. Resetting at the top of each
	// attempt recycles the slabs the previous (failed) attempt carved:
	// resilient.Run restored the stage-entry checkpoint before re-invoking
	// the step, and Restore deep-copies stores into the transport, so no
	// cluster-resident record references the failed attempt's carves by the
	// time Reset rewinds them. The successful attempt's carves are never
	// Reset away — the arena simply goes out of scope and the GC keeps its
	// slabs alive for as long as the cluster references them (escape mode).
	// The FJLT stage needs no equivalent: ApplyMPC's escaping payloads come
	// from round-local arenas that die with each attempt.
	attemptArena := arena.New()
	var tree *hst.Tree
	var einfo *mpcembed.Info
	err = runStage("embed", "tree_embed", func(sp *obs.Span) error {
		attemptArena.Reset()
		eoAttempt := eo
		eoAttempt.Span = sp
		eoAttempt.Quality = opt.Quality
		eoAttempt.Scratch = attemptArena
		t, ei, err := mpcembed.Embed(c, work, eoAttempt)
		einfo = ei // partial accounting survives a failed attempt
		if err != nil {
			return err
		}
		tree = t
		return nil
	})
	info.EmbedInfo = einfo
	m := c.Metrics()
	info.TotalRounds = m.Rounds
	info.PeakLocal = m.MaxLocalWords
	info.TotalSpace = m.TotalSpace
	info.CommWords = m.CommWords
	fillRecovery()
	if err != nil {
		return nil, info, err
	}
	if info.UsedFJLT {
		tree.ScaleWeights(1 / (1 - xi))
	}
	if opt.Quality != nil {
		// Audit the final tree against the ORIGINAL points: the 1/(1−ξ)
		// rescale above is exactly what makes domination hold w.h.p. for
		// the un-reduced metric, so that is the claim worth checking.
		qcfg := opt.Quality.Config()
		if qcfg.MaxMeanRatio == 0 && einfo != nil {
			qcfg.MaxMeanRatio = quality.Thm2Bound(einfo.Dim, einfo.R, einfo.Levels)
		}
		if rep, aerr := quality.Audit(tree, pts, qcfg); aerr == nil {
			opt.Quality.ObserveAudit(rep)
		}
	}
	return tree, info, nil
}
