package core

import (
	"bytes"
	"testing"

	"mpctree/internal/fjlt"
	"mpctree/internal/mpc"
	"mpctree/internal/workload"
)

// End-to-end worker invariance: the sequential embedding and the full
// Theorem-1 MPC pipeline must produce byte-identical trees at workers=1
// and workers=8. This is the top-level statement of the reproducibility
// contract — everything below (fjlt, hadamard, partition, mpcembed, vec)
// feeds into these two entry points.

func embedBytes(t *testing.T, m Method, r, workers int) []byte {
	t.Helper()
	pts := workload.UniformLattice(81, 48, 8, 512)
	tree, _, err := Embed(pts, Options{Method: m, R: r, Seed: 83, Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := tree.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestEmbedWorkerInvariant(t *testing.T) {
	cases := []struct {
		name string
		m    Method
		r    int
	}{
		{"grid", MethodGrid, 0},
		{"hybrid", MethodHybrid, 4},
	}
	for _, cse := range cases {
		t.Run(cse.name, func(t *testing.T) {
			want := embedBytes(t, cse.m, cse.r, 1)
			for _, workers := range []int{2, 8} {
				if got := embedBytes(t, cse.m, cse.r, workers); !bytes.Equal(got, want) {
					t.Fatalf("workers=%d: tree bytes differ from serial run", workers)
				}
			}
		})
	}
}

func TestEmbedPipelineWorkerInvariant(t *testing.T) {
	pts := workload.UniformLattice(85, 40, 96, 512)
	run := func(workers int) []byte {
		c := mpc.New(mpc.Config{Machines: 4, CapWords: 1 << 22})
		tree, _, err := EmbedPipeline(c, pts, PipelineOptions{
			Xi:      0.3,
			FJLT:    fjlt.Options{CK: 1},
			Seed:    87,
			Workers: workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if _, err := tree.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	want := run(1)
	for _, workers := range []int{2, 8} {
		if got := run(workers); !bytes.Equal(got, want) {
			t.Fatalf("workers=%d: pipeline tree bytes differ from serial run", workers)
		}
	}
}
