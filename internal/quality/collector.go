// Collector publishes audit reports and per-scale level stats onto an
// obs.Registry as the quality_* metric family. Like every obs consumer it
// is write-only and nil-safe: a nil *Collector costs one comparison per
// call, and nothing here is ever read back to steer an embedding.
package quality

import (
	"strconv"
	"sync/atomic"

	"mpctree/internal/obs"
	"mpctree/internal/partition"
)

// DefaultRatioBuckets suit distortion-ratio distributions: domination
// puts everything at ≥ 1, and Theorem-2 means grow like √(d·r)·logΔ —
// powers of two from 1 to 4096 cover both tails.
func DefaultRatioBuckets() []float64 {
	b := make([]float64, 0, 13)
	for v := 1.0; v <= 4096; v *= 2 {
		b = append(b, v)
	}
	return b
}

// Collector owns one labelled set of quality_* series. Construct one per
// audited tree (label "tree"=name in serving) or one unlabelled set for a
// pipeline run.
type Collector struct {
	cfg    Config
	labels []string

	runs       *obs.Counter
	pairsTotal *obs.Counter
	hist       *obs.Histogram
	domViol    *obs.Counter
	boundViol  *obs.Counter
	mean       *obs.Gauge
	max        *obs.Gauge
	min        *obs.Gauge
	reg        *obs.Registry

	last atomic.Pointer[Report]
}

// NewCollector registers the quality_* series on reg (label pairs
// alternate key, value, as in Registry.Counter) and returns the
// collector. Registration is idempotent, so collectors recreated across
// hot reloads share the same cells.
func NewCollector(reg *obs.Registry, cfg Config, labelPairs ...string) *Collector {
	c := &Collector{cfg: cfg, labels: labelPairs, reg: reg}
	c.runs = reg.Counter("quality_audit_runs_total", "Completed quality audits.", labelPairs...)
	c.pairsTotal = reg.Counter("quality_audit_pairs_total", "Point pairs measured across all audits.", labelPairs...)
	c.hist = reg.Histogram("quality_distortion_ratio", "Per-pair distortion ratios dist_T(p,q)/|p-q| observed by the auditor.", DefaultRatioBuckets(), labelPairs...)
	c.domViol = reg.Counter("quality_domination_violations_total", "Sampled pairs violating domination (ratio < 1).", labelPairs...)
	c.boundViol = reg.Counter("quality_bound_violations_total", "Audits whose mean ratio exceeded the Theorem-2 alarm threshold.", labelPairs...)
	c.mean = reg.Gauge("quality_mean_distortion_ratio", "Mean distortion ratio of the latest audit.", labelPairs...)
	c.max = reg.Gauge("quality_max_distortion_ratio", "Max distortion ratio of the latest audit.", labelPairs...)
	c.min = reg.Gauge("quality_min_distortion_ratio", "Min distortion ratio of the latest audit (domination requires >= 1).", labelPairs...)
	return c
}

// Config returns the audit configuration the collector was built with
// (zero Config for a nil collector).
func (c *Collector) Config() Config {
	if c == nil {
		return Config{}
	}
	return c.cfg
}

// Last returns the most recent report seen by ObserveAudit (nil before
// the first audit, or on a nil collector).
func (c *Collector) Last() *Report {
	if c == nil {
		return nil
	}
	return c.last.Load()
}

// ObserveAudit publishes one report's distortion series: the run and pair
// counters, every per-pair ratio into the histogram, the violation
// counters, and the latest-audit gauges. Level stats are published
// separately via ObserveLevels so embedders that observed richer in-loop
// stats do not double-count.
func (c *Collector) ObserveAudit(rep *Report) {
	if c == nil || rep == nil {
		return
	}
	c.runs.Inc()
	c.pairsTotal.Add(int64(rep.SampledPairs))
	for _, r := range rep.Ratios {
		c.hist.Observe(r)
	}
	c.domViol.Add(int64(rep.DominationViolations))
	if rep.BoundViolated {
		c.boundViol.Inc()
	}
	c.mean.Set(rep.MeanRatio)
	c.max.Set(rep.MaxRatio)
	c.min.Set(rep.MinRatio)
	c.last.Store(rep)
}

// ObserveLevels publishes per-scale Lemma-1 series, one labelled child
// per level: separation-event counters, pairs-together and
// diameter-ratio gauges.
func (c *Collector) ObserveLevels(levels []partition.LevelStat) {
	if c == nil || len(levels) == 0 {
		return
	}
	for _, st := range levels {
		lp := append(append([]string(nil), c.labels...), "level", strconv.Itoa(st.Level))
		c.reg.Counter("quality_separation_events_total", "Sampled pairs first separated at this hierarchy level.", lp...).Add(int64(st.Separated))
		c.reg.Gauge("quality_level_pairs_together", "Sampled pairs entering this level un-separated (latest observation).", lp...).Set(float64(st.Together))
		c.reg.Gauge("quality_level_diameter_ratio", "Max same-part pair distance over the Lemma-1 diameter bound at this level (must stay <= 1).", lp...).Set(st.DiamRatio)
	}
}
