// Package quality turns the paper's quality theorems into live telemetry.
// Where internal/stats measures distortion offline (one experiment, one
// number), this package audits a finished embedding continuously: a
// deterministic, seeded pair sample is driven through the tree, each
// pair's distortion ratio dist_T(p,q)/‖p−q‖₂ streams into an obs
// histogram, the domination invariant (ratio ≥ 1, Theorem 2) and a
// Theorem-2 expectation alarm are checked with explicit violation
// counters, and the per-scale Lemma-1 observables (separation events,
// same-part diameters per level w) are exported as metric series.
//
// Determinism contract (same as internal/obs): auditing is read-only on
// the tree and the points, draws its randomness from its own seed, and
// therefore never perturbs an embedding — the determinism suite asserts
// an audited run is bitwise equal to an un-audited one. With MaxPairs
// covering all pairs, the auditor enumerates and folds pairs in exactly
// the order stats.MeasureDistortion uses, so the two agree bit-for-bit
// on a single tree.
package quality

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"mpctree/internal/hst"
	"mpctree/internal/par"
	"mpctree/internal/partition"
	"mpctree/internal/rng"
	"mpctree/internal/vec"
)

// Config tunes an audit. The zero value samples 2048 pairs with seed 0,
// serial, with no Theorem-2 alarm threshold.
type Config struct {
	// MaxPairs caps the pair sample: 0 means 2048, negative means every
	// pair. When the cap covers all n(n−1)/2 pairs the sample is the full
	// lexicographic enumeration (the stats.MeasureDistortion order).
	MaxPairs int `json:"max_pairs,omitempty"`
	// Seed drives pair sampling only — it is independent of any embedding
	// seed, so the same pairs are re-audited across hot reloads.
	Seed uint64 `json:"seed,omitempty"`
	// Workers bounds the parallel ratio computation (par.Workers
	// semantics). Reports are bit-identical for any value: ratios land in
	// per-pair slots and every fold is serial in pair order.
	Workers int `json:"workers,omitempty"`
	// MaxMeanRatio, when positive, is the Theorem-2 expectation alarm: a
	// report whose mean ratio exceeds it is flagged BoundViolated. Derive
	// a threshold with Thm2Bound, or set a tighter SLO by hand.
	MaxMeanRatio float64 `json:"max_mean_ratio,omitempty"`
	// Tolerance is the relative slack of the domination check (ratio ≥
	// 1−Tolerance); 0 means 1e-9, absorbing float rounding only.
	Tolerance float64 `json:"tolerance,omitempty"`
}

func (c Config) withDefaults() Config {
	if c.MaxPairs == 0 {
		c.MaxPairs = 2048
	}
	if c.Tolerance == 0 {
		c.Tolerance = 1e-9
	}
	return c
}

// Report is one audit's result — the JSON served under /v1/quality.
type Report struct {
	Points       int     `json:"points"`
	SampledPairs int     `json:"sampled_pairs"` // pairs with nonzero distance actually measured
	TotalPairs   int     `json:"total_pairs"`   // n(n−1)/2
	ZeroSkipped  int     `json:"zero_skipped,omitempty"`
	Seed         uint64  `json:"seed"`
	MeanRatio    float64 `json:"mean_ratio"`
	MaxRatio     float64 `json:"max_ratio"`
	MinRatio     float64 `json:"min_ratio"`
	P95Ratio     float64 `json:"p95_ratio"`
	// DominationViolations counts pairs with dist_T < (1−tol)·‖p−q‖₂.
	// Zero, deterministically, for sequentially embedded trees; for
	// pipeline trees (FJLT + rescale) domination holds only w.h.p.
	DominationViolations int    `json:"domination_violations"`
	WorstPair            [2]int `json:"worst_pair"`
	MinPair              [2]int `json:"min_pair"`
	// MaxMeanRatio echoes the configured Theorem-2 alarm (0 = disabled);
	// BoundViolated reports MeanRatio > MaxMeanRatio.
	MaxMeanRatio  float64 `json:"max_mean_ratio,omitempty"`
	BoundViolated bool    `json:"bound_violated,omitempty"`
	// Levels holds the per-scale Lemma-1 observables derived from the
	// tree: a pair's separation level is its LCA level + 1, and the
	// level's diameter bound is the edge weight entering that level.
	Levels []partition.LevelStat `json:"levels,omitempty"`

	// Ratios holds the per-pair distortion ratios in sample order (zero-
	// distance pairs excluded), for histogram streaming and tests. Not
	// serialized: /v1/quality responses stay small.
	Ratios []float64 `json:"-"`
}

// Thm2Bound returns an alarm threshold for the expected distortion of an
// r-hybrid embedding in dimension d over the given level count: the
// Theorem-2 rate O(√(d·r)·logΔ) with a modest constant. It is a tripwire
// for regressions (a healthy embedding sits well below it), not a
// verification of the theorem's constant.
func Thm2Bound(d, r, levels int) float64 {
	if d < 1 {
		d = 1
	}
	if r < 1 {
		r = 1
	}
	if levels < 1 {
		levels = 1
	}
	return 4 * math.Sqrt(float64(d)*float64(r)) * float64(levels)
}

// SamplePairs returns a deterministic sample of point-index pairs (i<j,
// lexicographically sorted). When maxPairs is negative or covers all
// n(n−1)/2 pairs, the full enumeration is returned — the exact pair order
// stats.MeasureDistortion folds in. Otherwise maxPairs distinct pairs are
// drawn without replacement from the seeded generator; the draw never
// looks at coordinates, so the same (seed, n) yields the same sample for
// every tree of the point set.
func SamplePairs(seed uint64, n, maxPairs int) [][2]int {
	if n < 2 {
		return nil
	}
	total := n * (n - 1) / 2
	if maxPairs < 0 || maxPairs >= total {
		out := make([][2]int, 0, total)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				out = append(out, [2]int{i, j})
			}
		}
		return out
	}
	r := rng.NewHashed(seed, 0x9a117)
	seen := make(map[int]bool, maxPairs)
	out := make([][2]int, 0, maxPairs)
	for len(out) < maxPairs {
		i, j := r.Intn(n), r.Intn(n)
		if i == j {
			continue
		}
		if i > j {
			i, j = j, i
		}
		key := i*n + j
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, [2]int{i, j})
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a][0] != out[b][0] {
			return out[a][0] < out[b][0]
		}
		return out[a][1] < out[b][1]
	})
	return out
}

// Audit measures tree t against the Euclidean metric of pts over the
// Config's seeded pair sample. It is read-only on both arguments; the
// ratio computation fans out over cfg.Workers with every floating-point
// fold serial in pair order, so the report is bit-identical at any
// worker count.
func Audit(t *hst.Tree, pts []vec.Point, cfg Config) (*Report, error) {
	if t == nil {
		return nil, errors.New("quality: nil tree")
	}
	n := len(pts)
	if n < 2 {
		return nil, errors.New("quality: need ≥ 2 points")
	}
	if t.NumPoints() != n {
		return nil, fmt.Errorf("quality: tree has %d points, point set has %d", t.NumPoints(), n)
	}
	cfg = cfg.withDefaults()
	pairs := SamplePairs(cfg.Seed, n, cfg.MaxPairs)
	rep := &Report{
		Points:       n,
		TotalPairs:   n * (n - 1) / 2,
		Seed:         cfg.Seed,
		MaxMeanRatio: cfg.MaxMeanRatio,
		MinRatio:     math.Inf(1),
	}

	// Parallel measurement: each pair writes only its own slots. sep is
	// the pair's separation level (LCA level + 1); ratio < 0 marks a
	// zero-distance pair to skip.
	ratios := make([]float64, len(pairs))
	dists := make([]float64, len(pairs))
	seps := make([]int, len(pairs))
	par.For(cfg.Workers, len(pairs), func(lo, hi int) {
		for k := lo; k < hi; k++ {
			i, j := pairs[k][0], pairs[k][1]
			de := vec.Dist(pts[i], pts[j])
			dists[k] = de
			if de == 0 {
				ratios[k] = -1
				continue
			}
			ratios[k] = t.Dist(i, j) / de
			seps[k] = t.Nodes[t.LCA(t.Leaf[i], t.Leaf[j])].Level + 1
		}
	})

	// Serial fold in pair order — the stats.MeasureDistortion addition
	// sequence, so full-sample audits match it bit-for-bit.
	var sum float64
	kept := make([]float64, 0, len(pairs))
	for k, ratio := range ratios {
		if ratio < 0 {
			rep.ZeroSkipped++
			continue
		}
		sum += ratio
		kept = append(kept, ratio)
		if ratio < rep.MinRatio {
			rep.MinRatio = ratio
			rep.MinPair = pairs[k]
		}
		if ratio > rep.MaxRatio {
			rep.MaxRatio = ratio
			rep.WorstPair = pairs[k]
		}
		if ratio < 1-cfg.Tolerance {
			rep.DominationViolations++
		}
	}
	rep.SampledPairs = len(kept)
	rep.Ratios = kept
	if len(kept) == 0 {
		return nil, errors.New("quality: every sampled pair had zero distance")
	}
	rep.MeanRatio = sum / float64(len(kept))
	sorted := append([]float64(nil), kept...)
	sort.Float64s(sorted)
	rep.P95Ratio = sorted[int(0.95*float64(len(sorted)-1))]
	if cfg.MaxMeanRatio > 0 && rep.MeanRatio > cfg.MaxMeanRatio {
		rep.BoundViolated = true
	}
	rep.Levels = levelStats(t, dists, seps)
	return rep, nil
}

// TreeLevelStats derives the per-scale Lemma-1 observables from an
// assembled tree over a pair sample, without access to the per-level flat
// partitions: pair (p,q) was together at every level ≤ its LCA's level
// and separated one level below, and the Lemma-1 diameter bound at level
// ℓ is the edge weight entering ℓ (diamFactor·w_ℓ for both embedding
// algorithms). Used by the MPC embedding, where pairs span machines and
// the flat partitions are never materialised on one machine.
func TreeLevelStats(t *hst.Tree, pts []vec.Point, pairs [][2]int) []partition.LevelStat {
	dists := make([]float64, len(pairs))
	seps := make([]int, len(pairs))
	for k, pr := range pairs {
		dists[k] = vec.Dist(pts[pr[0]], pts[pr[1]])
		if dists[k] == 0 {
			seps[k] = 0 // excluded, same as Audit's zero-distance skip
			continue
		}
		seps[k] = t.Nodes[t.LCA(t.Leaf[pr[0]], t.Leaf[pr[1]])].Level + 1
	}
	return levelStats(t, dists, seps)
}

// levelStats aggregates separation levels into per-level stats. seps[k]
// == 0 excludes the pair (zero distance).
func levelStats(t *hst.Tree, dists []float64, seps []int) []partition.LevelStat {
	maxSep := 0
	for _, s := range seps {
		if s > maxSep {
			maxSep = s
		}
	}
	if maxSep == 0 {
		return nil
	}
	// The diameter bound at level ℓ is the (uniform) weight of edges into
	// level-ℓ nodes; take the max so compressed trees (merged unary
	// chains, weights summed) keep a valid — if looser — bound.
	weight := make([]float64, maxSep+1)
	for _, nd := range t.Nodes {
		if nd.Level >= 1 && nd.Level <= maxSep && nd.Weight > weight[nd.Level] {
			weight[nd.Level] = nd.Weight
		}
	}
	out := make([]partition.LevelStat, 0, maxSep)
	for lev := 1; lev <= maxSep; lev++ {
		st := partition.LevelStat{Level: lev, DiamBound: weight[lev]}
		for k, s := range seps {
			if s == 0 || s < lev {
				continue // excluded, or separated before this level
			}
			st.Together++
			if s == lev {
				st.Separated++
			} else if dists[k] > st.MaxSamePartDist {
				st.MaxSamePartDist = dists[k]
			}
		}
		if st.DiamBound > 0 && st.MaxSamePartDist > 0 {
			st.DiamRatio = st.MaxSamePartDist / st.DiamBound
		}
		if st.Together > 0 {
			st.SepRate = float64(st.Separated) / float64(st.Together)
		}
		out = append(out, st)
	}
	return out
}
