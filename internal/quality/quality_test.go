package quality_test

import (
	"bytes"
	"math"
	"reflect"
	"testing"

	"mpctree/internal/core"
	"mpctree/internal/hst"
	"mpctree/internal/obs"
	"mpctree/internal/quality"
	"mpctree/internal/stats"
	"mpctree/internal/vec"
	"mpctree/internal/workload"
)

func buildTree(t *testing.T, pts []vec.Point, seed uint64) *hst.Tree {
	t.Helper()
	tree, _, err := core.Embed(pts, core.Options{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

func testPoints(n int) []vec.Point {
	return workload.UniformLattice(7, n, 6, 1<<10)
}

func TestSamplePairsDeterministicSortedDistinct(t *testing.T) {
	a := quality.SamplePairs(42, 100, 300)
	b := quality.SamplePairs(42, 100, 300)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same (seed, n, maxPairs) produced different samples")
	}
	if len(a) != 300 {
		t.Fatalf("got %d pairs, want 300", len(a))
	}
	seen := map[[2]int]bool{}
	for k, pr := range a {
		if pr[0] >= pr[1] {
			t.Fatalf("pair %v not i<j", pr)
		}
		if seen[pr] {
			t.Fatalf("duplicate pair %v", pr)
		}
		seen[pr] = true
		if k > 0 && (a[k-1][0] > pr[0] || (a[k-1][0] == pr[0] && a[k-1][1] >= pr[1])) {
			t.Fatalf("pairs not lexicographically sorted at %d: %v after %v", k, pr, a[k-1])
		}
	}
	if c := quality.SamplePairs(43, 100, 300); reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical samples")
	}
}

func TestSamplePairsFullEnumeration(t *testing.T) {
	n := 20
	total := n * (n - 1) / 2
	for _, maxPairs := range []int{-1, total, total + 5} {
		pairs := quality.SamplePairs(1, n, maxPairs)
		if len(pairs) != total {
			t.Fatalf("maxPairs=%d: got %d pairs, want all %d", maxPairs, len(pairs), total)
		}
		k := 0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if pairs[k] != [2]int{i, j} {
					t.Fatalf("pair %d = %v, want [%d %d]", k, pairs[k], i, j)
				}
				k++
			}
		}
	}
}

func TestAuditBitIdenticalAcrossWorkers(t *testing.T) {
	pts := testPoints(120)
	tree := buildTree(t, pts, 3)
	base, err := quality.Audit(tree, pts, quality.Config{MaxPairs: 600, Seed: 9, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 4, 8} {
		rep, err := quality.Audit(tree, pts, quality.Config{MaxPairs: 600, Seed: 9, Workers: w})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(base, rep) {
			t.Fatalf("workers=%d report differs from workers=1:\n%+v\nvs\n%+v", w, rep, base)
		}
	}
}

func TestAuditMatchesOfflineMeasurement(t *testing.T) {
	pts := testPoints(90)
	tree := buildTree(t, pts, 5)
	rep, err := quality.Audit(tree, pts, quality.Config{MaxPairs: -1, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	off, err := stats.MeasureDistortionPar(pts, 1, 4, func(uint64) (*hst.Tree, error) { return tree, nil })
	if err != nil {
		t.Fatal(err)
	}
	if rep.MeanRatio != off.MeanRatio || rep.MinRatio != off.MinRatio ||
		rep.MaxRatio != off.MaxMeanRatio || rep.P95Ratio != off.P95Ratio ||
		rep.SampledPairs != off.Pairs {
		t.Fatalf("full audit %+v disagrees with offline %+v", rep, off)
	}
}

func TestAuditDominationAndLevels(t *testing.T) {
	pts := testPoints(100)
	tree := buildTree(t, pts, 11)
	rep, err := quality.Audit(tree, pts, quality.Config{MaxPairs: -1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.DominationViolations != 0 {
		t.Fatalf("sequential tree reported %d domination violations (min ratio %v, pair %v)",
			rep.DominationViolations, rep.MinRatio, rep.MinPair)
	}
	if rep.MinRatio < 1-1e-9 {
		t.Fatalf("min ratio %v < 1", rep.MinRatio)
	}
	if len(rep.Levels) == 0 {
		t.Fatal("no level stats")
	}
	together := rep.SampledPairs
	for _, st := range rep.Levels {
		if st.Together != together {
			t.Fatalf("level %d: together=%d, want %d (conservation: together_ℓ = together_{ℓ-1} − separated_{ℓ-1})",
				st.Level, st.Together, together)
		}
		together -= st.Separated
		if st.DiamRatio > 1+1e-9 {
			t.Fatalf("level %d: diameter ratio %v > 1 violates Lemma 1 (bound %v, max dist %v)",
				st.Level, st.DiamRatio, st.DiamBound, st.MaxSamePartDist)
		}
	}
	if together != 0 {
		t.Fatalf("%d pairs never separated — every finite-distance pair must separate by the leaf level", together)
	}
}

func TestAuditLeavesTreeBytesUntouched(t *testing.T) {
	pts := testPoints(80)
	tree := buildTree(t, pts, 13)
	var before, after bytes.Buffer
	if _, err := tree.WriteTo(&before); err != nil {
		t.Fatal(err)
	}
	if _, err := quality.Audit(tree, pts, quality.Config{MaxPairs: -1, Workers: 8}); err != nil {
		t.Fatal(err)
	}
	if _, err := tree.WriteTo(&after); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before.Bytes(), after.Bytes()) {
		t.Fatal("auditing mutated the tree's serialized bytes")
	}
}

func TestAuditBoundAlarm(t *testing.T) {
	pts := testPoints(60)
	tree := buildTree(t, pts, 17)
	rep, err := quality.Audit(tree, pts, quality.Config{MaxPairs: -1, MaxMeanRatio: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.BoundViolated {
		t.Fatalf("mean ratio %v did not trip an absurdly tight alarm", rep.MeanRatio)
	}
	rep, err = quality.Audit(tree, pts, quality.Config{MaxPairs: -1, MaxMeanRatio: math.Inf(1)})
	if err != nil {
		t.Fatal(err)
	}
	if rep.BoundViolated {
		t.Fatal("infinite alarm threshold reported violated")
	}
}

func TestAuditErrors(t *testing.T) {
	pts := testPoints(30)
	tree := buildTree(t, pts, 19)
	if _, err := quality.Audit(nil, pts, quality.Config{}); err == nil {
		t.Fatal("nil tree accepted")
	}
	if _, err := quality.Audit(tree, pts[:2], quality.Config{}); err == nil {
		t.Fatal("point-count mismatch accepted")
	}
	if _, err := quality.Audit(tree, nil, quality.Config{}); err == nil {
		t.Fatal("empty point set accepted")
	}
}

func TestCollectorPublishesSeries(t *testing.T) {
	pts := testPoints(50)
	tree := buildTree(t, pts, 23)
	reg := obs.New()
	col := quality.NewCollector(reg, quality.Config{MaxPairs: 200, Seed: 4}, "tree", "demo")
	rep, err := quality.Audit(tree, pts, col.Config())
	if err != nil {
		t.Fatal(err)
	}
	col.ObserveAudit(rep)
	col.ObserveLevels(rep.Levels)
	if col.Last() != rep {
		t.Fatal("Last() did not return the observed report")
	}
	got := map[string]float64{}
	var histCount int64
	for _, v := range reg.Snapshot() {
		switch v.Name {
		case "quality_distortion_ratio":
			histCount += v.Count
		default:
			got[v.Name] += v.Value
		}
	}
	if got["quality_audit_runs_total"] != 1 {
		t.Fatalf("quality_audit_runs_total = %v, want 1", got["quality_audit_runs_total"])
	}
	if got["quality_audit_pairs_total"] != float64(rep.SampledPairs) {
		t.Fatalf("quality_audit_pairs_total = %v, want %d", got["quality_audit_pairs_total"], rep.SampledPairs)
	}
	if histCount != int64(rep.SampledPairs) {
		t.Fatalf("histogram count %d, want %d", histCount, rep.SampledPairs)
	}
	if got["quality_domination_violations_total"] != 0 {
		t.Fatalf("quality_domination_violations_total = %v", got["quality_domination_violations_total"])
	}
	if got["quality_mean_distortion_ratio"] != rep.MeanRatio {
		t.Fatalf("mean gauge %v != report mean %v", got["quality_mean_distortion_ratio"], rep.MeanRatio)
	}
	sep := 0.0
	for _, v := range reg.Snapshot() {
		if v.Name == "quality_separation_events_total" {
			sep += v.Value
			if v.Labels["tree"] != "demo" || v.Labels["level"] == "" {
				t.Fatalf("separation series missing labels: %v", v.Labels)
			}
		}
	}
	if sep != float64(rep.SampledPairs) {
		t.Fatalf("separation events sum %v, want %d (every nonzero pair separates exactly once)", sep, rep.SampledPairs)
	}
	// Nil collector: all observation paths must be no-ops.
	var nilCol *quality.Collector
	nilCol.ObserveAudit(rep)
	nilCol.ObserveLevels(rep.Levels)
	if nilCol.Last() != nil || nilCol.Config() != (quality.Config{}) {
		t.Fatal("nil collector not inert")
	}
}

func TestThm2Bound(t *testing.T) {
	if b := quality.Thm2Bound(16, 4, 10); b != 4*8*10 {
		t.Fatalf("quality.Thm2Bound(16,4,10) = %v, want 320", b)
	}
	if b := quality.Thm2Bound(0, 0, 0); b <= 0 {
		t.Fatalf("degenerate inputs gave non-positive bound %v", b)
	}
}
