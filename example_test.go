package mpctree_test

import (
	"fmt"

	"mpctree"
	"mpctree/internal/workload"
)

// Embedding a point set and verifying the two Theorem-2 properties:
// domination holds for every pair, and distances are finite and positive.
func ExampleEmbed() {
	points := workload.UniformLattice(7, 100, 4, 256)
	tree, info, err := mpctree.Embed(points, mpctree.Options{Seed: 1})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	violations := 0
	for i := range points {
		for j := i + 1; j < len(points); j++ {
			if tree.Dist(i, j) < mpctree.Dist(points[i], points[j]) {
				violations++
			}
		}
	}
	fmt.Printf("points embedded: %d\n", info.N)
	fmt.Printf("domination violations: %d\n", violations)
	// Output:
	// points embedded: 100
	// domination violations: 0
}

// The approximate MST never beats the exact optimum (domination), and
// spans all points.
func ExampleApproxMST() {
	points := workload.GaussianClusters(3, 120, 3, 4, 8, 1024)
	tree, _, err := mpctree.Embed(points, mpctree.Options{Seed: 2})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	edges := mpctree.ApproxMST(points, tree)
	var approx float64
	for _, e := range edges {
		approx += e.Weight
	}
	var exact float64
	for _, e := range mpctree.ExactMST(points) {
		exact += e.Weight
	}
	fmt.Printf("edges: %d\n", len(edges))
	fmt.Printf("approx beats optimum: %v\n", approx < exact)
	// Output:
	// edges: 119
	// approx beats optimum: false
}

// Tree EMD is computed in one linear pass and never undershoots the
// exact Earth-Mover distance.
func ExampleApproxEMD() {
	points := workload.UniformLattice(11, 40, 3, 128)
	tree, _, err := mpctree.Embed(points, mpctree.Options{Seed: 3})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	n := len(points)
	mu := make([]float64, n)
	nu := make([]float64, n)
	mu[0], nu[n-1] = 1, 1
	approx := mpctree.ApproxEMD(tree, mu, nu)
	exact, err := mpctree.ExactEMD(points, mu, nu)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("tree EMD at least exact EMD: %v\n", approx >= exact)
	fmt.Printf("self distance: %v\n", mpctree.ApproxEMD(tree, mu, mu))
	// Output:
	// tree EMD at least exact EMD: true
	// self distance: 0
}

// The persistent index answers out-of-sample queries: indexed points
// locate themselves exactly.
func ExampleNewEmbedder() {
	points := workload.UniformLattice(13, 60, 4, 256)
	index, err := mpctree.NewEmbedder(points, mpctree.Options{Seed: 4})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	self := 0
	for i, p := range points {
		if got, d := index.Refine(p); got == i && d == 0 {
			self++
		}
	}
	fmt.Printf("self-queries resolved exactly: %d/%d\n", self, len(points))
	// Output:
	// self-queries resolved exactly: 60/60
}
